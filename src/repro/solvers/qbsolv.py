"""Qbsolv-style decomposing hybrid solver.

D-Wave's qbsolv (Booth, Reinhardt, Roy 2017) solves large QUBOs by repeatedly

1. selecting a *sub-problem*: a window of variables chosen by their impact on
   the current solution,
2. clamping every variable outside the window and folding its contribution into
   the sub-problem's linear terms,
3. optimising the sub-problem with a tabu-search sub-solver, and
4. accepting the sub-solution when it improves the global energy,

until a full pass over all windows yields no improvement.  The paper used
qbsolv's classical simulator backend; this module implements the same
decomposition loop on top of :class:`~repro.solvers.tabu.TabuSearchSolver`.

Reads are independent restarts of the whole decomposition, so a batch of
``num_reads > 1`` runs them concurrently on the shared service read pool
(:mod:`repro.service.executor`).  Each read draws from its own child RNG
stream spawned from the call's generator, which keeps seeded results
independent of thread scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.qubo.model import QUBOModel
from repro.solvers.base import QUBOSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class QbsolvConfig:
    """Configuration of :class:`QbsolvSolver`.

    Parameters
    ----------
    subproblem_size:
        Number of variables clamped into each sub-problem window.
    max_rounds:
        Maximum number of full decomposition passes per read.
    num_restarts:
        Independent random restarts per read; the best result is returned.
    subsolver_config:
        Tabu-search configuration used for each sub-problem.
    """

    subproblem_size: int = 48
    max_rounds: int = 8
    num_restarts: int = 1
    subsolver_config: TabuSearchConfig = field(
        default_factory=lambda: TabuSearchConfig(num_steps=200, restart_after=60)
    )

    def __post_init__(self) -> None:
        if self.subproblem_size <= 1:
            raise ValueError("subproblem_size must be at least 2")
        if self.max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        if self.num_restarts <= 0:
            raise ValueError("num_restarts must be positive")


class QbsolvSolver(QUBOSolver):
    """Decomposition-based hybrid QUBO solver in the style of D-Wave qbsolv."""

    name = "qbsolv"

    def __init__(self, config: QbsolvConfig | None = None) -> None:
        self.config = config or QbsolvConfig()
        self._subsolver = TabuSearchSolver(self.config.subsolver_config)

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        # One child stream per read: results are deterministic for a given
        # seed whether the reads run serially or across the thread pool.
        streams = spawn_rngs(rng, num_reads)
        if num_reads == 1:
            assignments = [self._solve_read(model, streams[0])]
            workers = 1
        else:
            # Deferred import: repro.service imports the solver package to
            # register backends, so binding at call time avoids the cycle.
            from repro.service.executor import read_executor, read_worker_count

            executor = read_executor()
            if executor is None:
                assignments = [self._solve_read(model, stream) for stream in streams]
                workers = 1
            else:
                assignments = list(
                    executor.map(lambda stream: self._solve_read(model, stream), streams)
                )
                workers = read_worker_count()
        return np.array(assignments), {"read_workers": workers}

    # ------------------------------------------------------------------ internals
    def _solve_read(self, model: QUBOModel, rng: np.random.Generator) -> np.ndarray:
        """One read: the best of ``num_restarts`` full decomposition runs."""
        best_x: Optional[np.ndarray] = None
        best_energy = np.inf
        for _ in range(self.config.num_restarts):
            x = self._solve_once(model, rng)
            energy = model.energy(x)
            if energy < best_energy:
                best_energy = energy
                best_x = x
        return best_x
    def _solve_once(self, model: QUBOModel, rng: np.random.Generator) -> np.ndarray:
        n = model.num_variables
        Q = np.asarray(model.Q)
        diag = np.diag(Q).copy()
        window = min(self.config.subproblem_size, n)

        x = rng.integers(0, 2, size=n).astype(np.float64)
        energy = model.energy(x)

        for _ in range(self.config.max_rounds):
            improved = False
            order = self._impact_order(Q, diag, x, rng)
            for start in range(0, n, window):
                block = order[start : start + window]
                if block.size < 2:
                    continue
                sub_model, _ = self._clamp(model, Q, diag, x, block)
                sub_x0 = x[block].astype(np.int8)
                sub_x = self._subsolver.refine(sub_model, sub_x0, rng=rng)
                candidate = x.copy()
                candidate[block] = sub_x
                candidate_energy = model.energy(candidate)
                if candidate_energy < energy - 1e-12:
                    x = candidate
                    energy = candidate_energy
                    improved = True
            if not improved:
                break

        return x.astype(np.int8)

    @staticmethod
    def _impact_order(
        Q: np.ndarray, diag: np.ndarray, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Variables ordered by decreasing |single-flip energy change| with noise.

        Sorting by impact concentrates the sub-problem windows on the variables
        that matter most to the current solution (as qbsolv does); a small
        random tie-breaker keeps successive rounds from using identical windows.
        """
        h = Q @ x
        delta = (1.0 - 2.0 * x) * (diag + 2.0 * h - 2.0 * diag * x)
        noise = rng.random(x.shape[0]) * 1e-9
        return np.argsort(-(np.abs(delta) + noise), kind="stable")

    @staticmethod
    def _clamp(
        model: QUBOModel,
        Q: np.ndarray,
        diag: np.ndarray,
        x: np.ndarray,
        block: np.ndarray,
    ) -> tuple[QUBOModel, float]:
        """Build the sub-QUBO over ``block`` with all other variables clamped at ``x``."""
        outside = np.ones(x.shape[0], dtype=bool)
        outside[block] = False
        sub_Q = Q[np.ix_(block, block)].copy()
        # Interaction with clamped variables becomes a linear (diagonal) term.
        cross = 2.0 * Q[np.ix_(block, np.where(outside)[0])] @ x[outside]
        sub_Q[np.diag_indices_from(sub_Q)] += cross
        clamped_offset = float(x[outside] @ Q[np.ix_(np.where(outside)[0], np.where(outside)[0])] @ x[outside])
        return QUBOModel(sub_Q, offset=model.offset + clamped_offset, name="qbsolv-sub"), clamped_offset
