"""Qbsolv-style decomposing hybrid solver.

D-Wave's qbsolv (Booth, Reinhardt, Roy 2017) solves large QUBOs by repeatedly

1. selecting a *sub-problem*: a window of variables chosen by their impact on
   the current solution,
2. clamping every variable outside the window and folding its contribution into
   the sub-problem's linear terms,
3. optimising the sub-problem with a tabu-search sub-solver, and
4. accepting the sub-solution when it improves the global energy,

until a full pass over all windows yields no improvement.  The paper used
qbsolv's classical simulator backend; this module implements the same
decomposition loop on top of :class:`~repro.solvers.tabu.TabuSearchSolver`.

Reads are independent restarts of the whole decomposition, so a batch of
``num_reads > 1`` runs them concurrently on the shared service read pool
(:mod:`repro.service.executor`).  Each read draws from its own child RNG
stream spawned from the call's generator, which keeps seeded results
independent of thread scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.compute.backend import validate_engine_dtype
from repro.qubo.model import QUBOModel
from repro.solvers.base import QUBOSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class QbsolvConfig:
    """Configuration of :class:`QbsolvSolver`.

    Parameters
    ----------
    subproblem_size:
        Number of variables clamped into each sub-problem window.
    max_rounds:
        Maximum number of full decomposition passes per read.
    num_restarts:
        Independent random restarts per read; the best result is returned.
    subsolver_config:
        Tabu-search configuration used for each sub-problem.
    array_backend / dtype:
        Array backend and float precision forwarded to the tabu sub-solver
        (unless the ``subsolver_config`` pins its own).  The decomposition
        loop itself is host control flow and stays numpy.
    """

    subproblem_size: int = 48
    max_rounds: int = 8
    num_restarts: int = 1
    subsolver_config: TabuSearchConfig = field(
        default_factory=lambda: TabuSearchConfig(num_steps=200, restart_after=60)
    )
    array_backend: Optional[str] = None
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if self.subproblem_size <= 1:
            raise ValueError("subproblem_size must be at least 2")
        if self.max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        if self.num_restarts <= 0:
            raise ValueError("num_restarts must be positive")
        validate_engine_dtype(self.dtype)


class QbsolvSolver(QUBOSolver):
    """Decomposition-based hybrid QUBO solver in the style of D-Wave qbsolv."""

    name = "qbsolv"

    def __init__(self, config: QbsolvConfig | None = None) -> None:
        self.config = config or QbsolvConfig()
        sub = self.config.subsolver_config
        if (self.config.array_backend is not None and sub.array_backend is None) or (
            self.config.dtype is not None and sub.dtype is None
        ):
            sub = replace(
                sub,
                array_backend=sub.array_backend or self.config.array_backend,
                dtype=sub.dtype or self.config.dtype,
            )
        self._subsolver = TabuSearchSolver(sub)

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        # One child stream per read: results are deterministic for a given
        # seed whether the reads run serially or across the thread pool.
        streams = spawn_rngs(rng, num_reads)
        if num_reads == 1:
            assignments = [self._solve_read(model, streams[0])]
            workers = 1
        else:
            # Deferred import: repro.service imports the solver package to
            # register backends, so binding at call time avoids the cycle.
            from repro.service.executor import read_executor, read_worker_count

            executor = read_executor()
            if executor is None:
                assignments = [self._solve_read(model, stream) for stream in streams]
                workers = 1
            else:
                assignments = list(
                    executor.map(lambda stream: self._solve_read(model, stream), streams)
                )
                workers = read_worker_count()
        return np.array(assignments), {"read_workers": workers}

    # ------------------------------------------------------------------ internals
    def _solve_read(self, model: QUBOModel, rng: np.random.Generator) -> np.ndarray:
        """One read: the best of ``num_restarts`` full decomposition runs."""
        best_x: Optional[np.ndarray] = None
        best_energy = np.inf
        for _ in range(self.config.num_restarts):
            x = self._solve_once(model, rng)
            energy = model.energy(x)
            if energy < best_energy:
                best_energy = energy
                best_x = x
        return best_x
    def _solve_once(self, model: QUBOModel, rng: np.random.Generator) -> np.ndarray:
        n = model.num_variables
        window = min(self.config.subproblem_size, n)
        # Branch on the auto-selected operator kind — a function of size and
        # density only, never of how the model happens to be stored — so the
        # seeded trajectory is storage-invariant (fingerprints, cache keys and
        # request grouping identify models by content, not storage).
        op = model.operator()
        if op.kind == "sparse":
            # CSR path: steer window selection and clamping through the sparse
            # operator (float32 coefficients, like the annealing engine) — the
            # model is never densified.  Candidate acceptance and the clamped
            # part's energy are always evaluated against the exact model.
            diag = np.asarray(op.diag, dtype=np.float64)

            def full_field(x: np.ndarray) -> np.ndarray:
                return op.right_multiply(x[None, :])[0]

            def clamp(x: np.ndarray, block: np.ndarray) -> QUBOModel:
                clamped = x.copy()
                clamped[block] = 0.0
                clamped_energy = model.energy(clamped) - model.offset
                return self._clamp_rows(model, op.rows(block), x, block, clamped_energy)

        else:
            Q = np.asarray(model.Q)
            diag = np.diag(Q).copy()

            def full_field(x: np.ndarray) -> np.ndarray:
                return Q @ x

            def clamp(x: np.ndarray, block: np.ndarray) -> QUBOModel:
                return self._clamp_dense(model, Q, x, block)

        x = rng.integers(0, 2, size=n).astype(np.float64)
        energy = model.energy(x)

        for _ in range(self.config.max_rounds):
            improved = False
            order = self._impact_order(full_field(x), diag, x, rng)
            for start in range(0, n, window):
                block = order[start : start + window]
                if block.size < 2:
                    continue
                sub_model = clamp(x, block)
                sub_x0 = x[block].astype(np.int8)
                sub_x = self._subsolver.refine(sub_model, sub_x0, rng=rng)
                candidate = x.copy()
                candidate[block] = sub_x
                candidate_energy = model.energy(candidate)
                if candidate_energy < energy - 1e-12:
                    x = candidate
                    energy = candidate_energy
                    improved = True
            if not improved:
                break

        return x.astype(np.int8)

    @staticmethod
    def _impact_order(
        h: np.ndarray, diag: np.ndarray, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Variables ordered by decreasing |single-flip energy change| with noise.

        ``h`` is the local field ``Q @ x``.  Sorting by impact concentrates the
        sub-problem windows on the variables that matter most to the current
        solution (as qbsolv does); a small random tie-breaker keeps successive
        rounds from using identical windows.
        """
        delta = (1.0 - 2.0 * x) * (diag + 2.0 * h - 2.0 * diag * x)
        noise = rng.random(x.shape[0]) * 1e-9
        return np.argsort(-(np.abs(delta) + noise), kind="stable")

    @staticmethod
    def _clamp_dense(
        model: QUBOModel,
        Q: np.ndarray,
        x: np.ndarray,
        block: np.ndarray,
    ) -> QUBOModel:
        """Sub-QUBO over ``block`` with all other variables clamped at ``x``.

        Operates on the full dense ``Q`` with the exact historical submatrix
        gathers — seeded dense-model results are bit-for-bit stable (the
        row-based variant below computes the same values through differently
        laid-out arrays, which perturbs BLAS results in the last ulp).
        """
        outside = np.ones(x.shape[0], dtype=bool)
        outside[block] = False
        sub_Q = Q[np.ix_(block, block)].copy()
        # Interaction with clamped variables becomes a linear (diagonal) term.
        cross = 2.0 * Q[np.ix_(block, np.where(outside)[0])] @ x[outside]
        sub_Q[np.diag_indices_from(sub_Q)] += cross
        clamped_energy = float(
            x[outside] @ Q[np.ix_(np.where(outside)[0], np.where(outside)[0])] @ x[outside]
        )
        return QUBOModel(sub_Q, offset=model.offset + clamped_energy, name="qbsolv-sub")

    @staticmethod
    def _clamp_rows(
        model: QUBOModel,
        rows: np.ndarray,
        x: np.ndarray,
        block: np.ndarray,
        clamped_energy: float,
    ) -> QUBOModel:
        """Sub-QUBO over ``block`` built from a dense row gather (sparse path).

        ``rows`` is ``Q[block]`` gathered from the CSR operator and
        ``clamped_energy`` the quadratic energy of the clamped (outside) part,
        evaluated against the exact model by the caller.
        """
        outside = np.ones(x.shape[0], dtype=bool)
        outside[block] = False
        sub_Q = rows[:, block].copy()
        # Interaction with clamped variables becomes a linear (diagonal) term.
        cross = 2.0 * rows[:, outside] @ x[outside]
        sub_Q[np.diag_indices_from(sub_Q)] += cross
        return QUBOModel(
            sub_Q, offset=model.offset + float(clamped_energy), name="qbsolv-sub"
        )
