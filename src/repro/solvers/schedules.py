"""Annealing temperature schedules.

Both the simulated annealer and the Digital-Annealer-style solver cool a batch
of replicas from ``t_initial`` down to ``t_final`` over a fixed number of
sweeps.  A schedule maps the sweep index to a temperature; the two classic
choices (geometric and linear) are provided, plus an automatic heuristic that
derives a sensible range from the QUBO coefficients so users rarely need to
hand-tune temperatures.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.qubo.model import QUBOModel
from repro.utils.validation import check_positive


class TemperatureSchedule(abc.ABC):
    """Maps a sweep index in ``[0, num_sweeps)`` to a temperature."""

    @abc.abstractmethod
    def temperatures(self, num_sweeps: int) -> np.ndarray:
        """Return the full temperature trajectory for ``num_sweeps`` sweeps."""

    def __call__(self, num_sweeps: int) -> np.ndarray:
        if num_sweeps <= 0:
            raise ValueError("num_sweeps must be positive")
        temps = self.temperatures(num_sweeps)
        if temps.shape != (num_sweeps,):
            raise ValueError("schedule returned the wrong number of temperatures")
        return temps


@dataclass(frozen=True)
class GeometricSchedule(TemperatureSchedule):
    """Temperature decays geometrically from ``t_initial`` to ``t_final``."""

    t_initial: float
    t_final: float

    def __post_init__(self) -> None:
        check_positive(self.t_initial, "t_initial")
        check_positive(self.t_final, "t_final")
        if self.t_final > self.t_initial:
            raise ValueError("t_final must not exceed t_initial")

    def temperatures(self, num_sweeps: int) -> np.ndarray:
        if num_sweeps == 1:
            return np.array([self.t_initial])
        ratio = (self.t_final / self.t_initial) ** (1.0 / (num_sweeps - 1))
        return self.t_initial * ratio ** np.arange(num_sweeps)


@dataclass(frozen=True)
class LinearSchedule(TemperatureSchedule):
    """Temperature decreases linearly from ``t_initial`` to ``t_final``."""

    t_initial: float
    t_final: float

    def __post_init__(self) -> None:
        check_positive(self.t_initial, "t_initial")
        check_positive(self.t_final, "t_final")
        if self.t_final > self.t_initial:
            raise ValueError("t_final must not exceed t_initial")

    def temperatures(self, num_sweeps: int) -> np.ndarray:
        return np.linspace(self.t_initial, self.t_final, num_sweeps)


def default_temperature_range(model: QUBOModel) -> tuple[float, float]:
    """Heuristic ``(t_initial, t_final)`` derived from the coefficient scale.

    The initial temperature is set so that a typical uphill single-flip move is
    accepted with high probability, and the final temperature so that only
    moves near degeneracy are accepted — the same heuristic used by common
    simulated-annealing samplers.  The coefficient scan is cached on the model
    (:meth:`QUBOModel.coefficient_stats`), so solvers that resolve a schedule
    on every ``sample`` call pay the ``O(n^2)`` cost only once per model.
    """
    max_delta, min_nonzero = model.coefficient_stats()
    t_initial = max(max_delta, 1e-6)
    t_final = max(min_nonzero / 10.0, 1e-9)
    if t_final > t_initial:
        t_final = t_initial / 1000.0
    return t_initial, t_final


def resolve_schedule(
    model: QUBOModel,
    schedule: TemperatureSchedule | None,
) -> TemperatureSchedule:
    """Return ``schedule`` or a geometric schedule with the automatic range."""
    if schedule is not None:
        return schedule
    t_initial, t_final = default_temperature_range(model)
    return GeometricSchedule(t_initial=t_initial, t_final=t_final)
