"""Solver interface shared by every QUBO backend in the library.

A *solver* takes a :class:`~repro.qubo.model.QUBOModel` and returns a
:class:`~repro.qubo.sampleset.SampleSet` of ``num_reads`` stochastic reads.
Every backend is a drop-in replacement for any other, which is what lets the
experiment harness swap the simulated Digital Annealer for the Qbsolv-style
hybrid (paper Section 5.3) without touching the QROSS code.
"""

from __future__ import annotations

import abc
import hashlib
import time
from typing import Optional

import numpy as np

from repro import obs
from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.utils.rng import RngLike, ensure_rng


class QUBOSolver(abc.ABC):
    """Abstract base class for stochastic QUBO solvers.

    :meth:`sample` is a template method: it validates ``num_reads``, resolves
    the RNG, times the call and packages the result, then delegates the actual
    search to the backend's :meth:`_sample`.  Centralising the boilerplate
    guarantees every backend validates and seeds identically — a backend can
    no longer forget ``validate_reads`` or accept a raw seed inconsistently.
    """

    #: Human-readable backend name used in sample sets and reports.
    name: str = "solver"

    def sample(
        self,
        model: QUBOModel,
        num_reads: int = 1,
        rng: RngLike = None,
    ) -> SampleSet:
        """Draw ``num_reads`` candidate assignments for ``model``."""
        started_at = time.perf_counter()
        num_reads = validate_reads(num_reads)
        rng = ensure_rng(rng)
        with obs.span("engine.sample", solver=self.name, num_reads=num_reads):
            assignments, extra_info = self._sample(model, num_reads, rng)
        obs.histogram(
            "qross_engine_sample_seconds",
            labels={"solver": self.name},
            buckets=obs.LATENCY_BUCKETS,
            help="Wall time of one solver.sample() call",
        ).observe(time.perf_counter() - started_at)
        return self._finalize(model, assignments, started_at, extra_info=extra_info)

    @abc.abstractmethod
    def _sample(
        self,
        model: QUBOModel,
        num_reads: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, Optional[dict]]:
        """Backend-specific search: return ``(assignments, extra_info)``.

        ``num_reads`` is already validated and ``rng`` is a concrete generator.
        ``assignments`` is a ``(num_reads, n)`` binary matrix; ``extra_info``
        (or ``None``) is merged into the sample set's metadata.  Energies are
        always recomputed against the exact ``model`` by the template, so a
        backend that searched a perturbed model needs no special handling.
        """

    def config_fingerprint(self) -> str:
        """Stable short hash identifying this solver's configuration.

        Two solver instances of the same class with different configurations
        must fingerprint differently — cache layers key on
        ``(name, config_fingerprint)`` so their statistics never collide.  The
        default hashes the ``repr`` of the solver's ``config`` attribute
        (dataclass reprs are deterministic and cover nested schedule/config
        dataclasses); solvers with non-dataclass state should override this.
        """
        config = getattr(self, "config", None)
        payload = f"{type(self).__qualname__}:{config!r}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    # ------------------------------------------------------------ conveniences
    def sample_best(self, model: QUBOModel, num_reads: int = 1, rng: RngLike = None) -> np.ndarray:
        """Return only the lowest-energy assignment of a batch."""
        return self.sample(model, num_reads=num_reads, rng=rng).best.assignment

    def _finalize(
        self,
        model: QUBOModel,
        assignments: np.ndarray,
        started_at: float,
        rng_used: Optional[np.random.Generator] = None,
        extra_info: Optional[dict] = None,
    ) -> SampleSet:
        """Package raw assignments into a :class:`SampleSet` with energies and metadata."""
        assignments = np.asarray(assignments, dtype=np.int8)
        energies = model.energies(assignments)
        info = {"wall_time_s": time.perf_counter() - started_at, "solver": self.name}
        if extra_info:
            info.update(extra_info)
        return SampleSet(assignments, energies, solver_name=self.name, info=info)

    @staticmethod
    def _random_states(num_reads: int, num_variables: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random binary starting states of shape ``(num_reads, n)``."""
        return rng.integers(0, 2, size=(num_reads, num_variables), dtype=np.int8)


def validate_reads(num_reads: int) -> int:
    """Validate the requested batch size."""
    num_reads = int(num_reads)
    if num_reads <= 0:
        raise ValueError(f"num_reads must be positive, got {num_reads}")
    return num_reads
