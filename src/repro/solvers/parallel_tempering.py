"""Replica-exchange (parallel tempering) Monte Carlo on the shared engine.

Plain simulated annealing commits every replica to one cooling trajectory: a
replica trapped in a deep local minimum late in the schedule has no
temperature left to climb out with.  Parallel tempering (Swendsen & Wang 1986;
the variant discussed for Digital-Annealer-class hardware by Aramon et al.,
Frontiers in Physics 2019) removes the schedule entirely: a *ladder* of
replicas runs at fixed temperatures spanning hot (free exploration) to cold
(greedy refinement), and neighbouring rungs periodically propose to swap
configurations with the detailed-balance acceptance
``min(1, exp((beta_i - beta_j) (E_i - E_j)))``.  Low-energy states found by
hot rungs percolate down the ladder; stuck cold rungs hand their basin back
up — the walk mixes across temperatures instead of through time.

Implementation notes
--------------------
Every requested read owns an independent ladder of ``num_replicas`` rungs and
*all* rungs of *all* reads live in one :class:`~repro.solvers.engine.
AnnealingState` batch of ``num_reads * num_replicas`` rows (read-major, rung
``j`` of read ``k`` at row ``k * num_replicas + j``).  Sweeps reuse the same
blocked single-flip kernel as simulated annealing, with the per-row
temperature form of :func:`~repro.solvers.engine.metropolis_accept`; swap
rounds exchange full state rows (``X``/``H``/energies) so the row ->
temperature mapping stays static.  Exchanging rows rather than temperatures
costs ``O(n)`` per accepted swap but keeps every kernel oblivious to the
ladder — the engine sees just another replica batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.compute.backend import resolve_array_backend, validate_engine_dtype
from repro.qubo.model import QUBOModel
from repro.solvers.base import QUBOSolver
from repro.solvers.engine import (
    AnnealingState,
    default_block_size,
    metropolis_accept,
    propose_ladder_swaps,
)
from repro.solvers.schedules import default_temperature_range


@dataclass(frozen=True)
class ParallelTemperingConfig:
    """Configuration of :class:`ParallelTemperingSolver`.

    Parameters
    ----------
    num_sweeps:
        Full single-flip passes over the variables per rung.
    num_replicas:
        Rungs in each read's temperature ladder.
    swap_interval:
        Sweeps between neighbour-swap rounds (pairings alternate even/odd
        between rounds, so every neighbouring pair is proposed every two
        rounds).
    t_hot / t_cold:
        Ladder endpoints.  ``None`` derives them from the model's coefficient
        scale (:func:`~repro.solvers.schedules.default_temperature_range`);
        the rungs are geometrically spaced between the endpoints.
    block_size:
        Variables proposed together within a sweep (``None`` selects
        :func:`~repro.solvers.engine.default_block_size`, ``1`` the exact
        sequential sweep).
    track_trajectory:
        Record the batch-best energy after every sweep in the sample-set info
        (``best_energy_trajectory``) — the time-to-target instrumentation used
        by ``benchmarks/bench_pt.py``.  Never changes the random stream.
    array_backend:
        Array backend the sweep/swap kernels run on (``None`` = environment /
        numpy reference).
    dtype:
        Engine float precision (``"float64"`` / ``"float32"``; ``None`` =
        environment / float64).
    """

    num_sweeps: int = 100
    num_replicas: int = 8
    swap_interval: int = 5
    t_hot: Optional[float] = None
    t_cold: Optional[float] = None
    block_size: Optional[int] = None
    track_trajectory: bool = False
    array_backend: Optional[str] = None
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_sweeps <= 0:
            raise ValueError("num_sweeps must be positive")
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.swap_interval <= 0:
            raise ValueError("swap_interval must be positive")
        for name in ("t_hot", "t_cold"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        if self.t_hot is not None and self.t_cold is not None and self.t_cold > self.t_hot:
            raise ValueError("t_cold must not exceed t_hot")
        if self.block_size is not None and self.block_size <= 0:
            raise ValueError("block_size must be positive")
        validate_engine_dtype(self.dtype)


class ParallelTemperingSolver(QUBOSolver):
    """Replica-exchange Monte Carlo over a geometric temperature ladder."""

    name = "parallel-tempering"

    def __init__(self, config: ParallelTemperingConfig | None = None) -> None:
        self.config = config or ParallelTemperingConfig()

    def _ladder(self, model: QUBOModel) -> np.ndarray:
        """Geometric rung temperatures, hottest first (rung 0 = ``t_hot``)."""
        t_hot, t_cold = self.config.t_hot, self.config.t_cold
        if t_hot is None or t_cold is None:
            auto_hot, auto_cold = default_temperature_range(model)
            t_hot = auto_hot if t_hot is None else t_hot
            t_cold = auto_cold if t_cold is None else t_cold
        if t_cold > t_hot:
            # One endpoint was explicit, the other auto-derived from this
            # model's coefficient scale, and they inverted — same error the
            # all-explicit config raises, just only detectable per model.
            raise ValueError(
                f"ladder endpoints inverted for model {model.name!r}: "
                f"t_cold={t_cold:.6g} exceeds t_hot={t_hot:.6g}; set both "
                f"endpoints explicitly (or neither)"
            )
        m = self.config.num_replicas
        if m == 1:
            return np.array([t_cold])
        ratio = (t_cold / t_hot) ** (1.0 / (m - 1))
        return t_hot * ratio ** np.arange(m)

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        cfg = self.config
        n = model.num_variables
        m = cfg.num_replicas
        ladder = self._ladder(model)
        ab = resolve_array_backend(cfg.array_backend, cfg.dtype)
        # Row r runs at the fixed temperature of rung r % m.
        row_temps = ab.from_numpy(np.tile(ladder, num_reads))
        betas = ab.from_numpy(1.0 / ladder)
        block = cfg.block_size or default_block_size(n)

        state = AnnealingState(model, num_reads * m, rng=rng, array_backend=ab)
        state.profiler = obs.engine_profiler(self.name)
        read_base = np.arange(num_reads)[:, None] * m

        swaps_proposed = swaps_accepted = 0
        trajectory = [] if cfg.track_trajectory else None
        for sweep in range(cfg.num_sweeps):
            order = rng.permutation(n)
            uniforms = ab.from_numpy(rng.random((num_reads * m, n)))
            for start in range(0, n, block):
                cols = order[start : start + block]
                delta = state.flip_deltas(cols)
                accept = metropolis_accept(
                    delta, row_temps, uniforms[:, start : start + cols.size], ab=ab
                )
                state.apply_block_flips(cols, accept)
            state.refresh_energies()
            state.update_best()
            if state.profiler is not None:
                state.profiler.end_sweep()

            if m > 1 and (sweep + 1) % cfg.swap_interval == 0:
                offset = (sweep // cfg.swap_interval) % 2
                rungs = np.arange(offset, m - 1, 2)
                energies = state.current_energies.reshape(num_reads, m)
                accept = propose_ladder_swaps(
                    energies, betas, offset, ab.from_numpy(rng.random((num_reads, rungs.size))), ab=ab
                )
                accept = ab.to_numpy(accept)
                swaps_proposed += accept.size
                swaps_accepted += int(accept.sum())
                if state.profiler is not None:
                    state.profiler.record_swap_round(int(accept.size), int(accept.sum()))
                if accept.any():
                    reads, pairs = np.nonzero(accept)
                    rows_i = (read_base[reads, 0] + rungs[pairs]).ravel()
                    state.swap_rows(rows_i, rows_i + 1)
            if trajectory is not None:
                trajectory.append(float(state.best_energies.min()))

        # Per read: the best state any of its rungs ever visited.
        best_energies = state.best_energies_host().reshape(num_reads, m)
        winner = best_energies.argmin(axis=1)
        assignments = state.best_states_host().reshape(num_reads, m, n)[np.arange(num_reads), winner]
        info = {
            "num_sweeps": cfg.num_sweeps,
            "num_replicas": m,
            "swap_interval": cfg.swap_interval,
            "swaps_proposed": swaps_proposed,
            "swaps_accepted": swaps_accepted,
            "block_size": block,
        }
        if trajectory is not None:
            info["best_energy_trajectory"] = trajectory
        if state.profiler is not None:
            info["engine_profile"] = state.profiler.finish()
        return assignments, info
