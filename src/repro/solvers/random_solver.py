"""Uniform random sampling baseline solver.

Useful as a sanity-check lower bound in tests and as a cheap source of training
data when exercising the surrogate pipeline without paying for annealing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.qubo.model import QUBOModel
from repro.solvers.base import QUBOSolver


class RandomSolver(QUBOSolver):
    """Returns uniformly random binary assignments."""

    name = "random"

    def _sample(
        self, model: QUBOModel, num_reads: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, Optional[dict]]:
        return self._random_states(num_reads, model.num_variables, rng), None
