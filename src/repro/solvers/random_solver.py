"""Uniform random sampling baseline solver.

Useful as a sanity-check lower bound in tests and as a cheap source of training
data when exercising the surrogate pipeline without paying for annealing.
"""

from __future__ import annotations

import time

from repro.qubo.model import QUBOModel
from repro.qubo.sampleset import SampleSet
from repro.solvers.base import QUBOSolver, validate_reads
from repro.utils.rng import RngLike, ensure_rng


class RandomSolver(QUBOSolver):
    """Returns uniformly random binary assignments."""

    name = "random"

    def sample(self, model: QUBOModel, num_reads: int = 1, rng: RngLike = None) -> SampleSet:
        started_at = time.perf_counter()
        num_reads = validate_reads(num_reads)
        rng = ensure_rng(rng)
        states = self._random_states(num_reads, model.num_variables, rng)
        return self._finalize(model, states, started_at)
