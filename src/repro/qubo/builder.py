"""Penalty-based QUBO construction for linearly-constrained binary programmes.

The paper's starting point is the relaxation

.. math::

    \\min_{x \\in \\{0,1\\}^n} x^T Q x \\quad \\text{s.t. } Cx = d
    \\;\\longrightarrow\\;
    \\min_{x \\in \\{0,1\\}^n} x^T Q x + A \\, \\lVert Cx - d \\rVert^2

where ``A`` is the relaxation (penalty) parameter QROSS tunes.  This module
provides that conversion for arbitrary linear equality constraints — sparse
first: ``C`` may be a scipy sparse matrix, the penalty ``C^T C`` is computed
sparsely and coalesced through a :class:`~repro.qubo.expression.QUBOAccumulator`,
so large constraint systems never materialise a dense ``n x n`` array — plus a
small helper for inequality constraints via slack variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.qubo.expression import QUBOAccumulator, RelaxedEncoding
from repro.qubo.model import QUBOModel

from repro.utils.sparse import scipy_sparse as _sparse


@dataclass(frozen=True)
class LinearConstraints:
    """Equality constraints ``C x = d`` over binary variables.

    ``C`` may be a dense ndarray or any scipy sparse matrix (stored as CSR);
    every method works on both representations.
    """

    C: np.ndarray
    d: np.ndarray

    def __post_init__(self) -> None:
        C = self.C
        if _sparse is not None and _sparse.issparse(C):
            C = _sparse.csr_array(C).astype(np.float64)
        else:
            C = np.asarray(C, dtype=np.float64)
        if C.ndim != 2:
            raise ValueError(f"C must be 2-D, got shape {C.shape}")
        d = np.asarray(self.d, dtype=np.float64)
        if d.shape != (C.shape[0],):
            raise ValueError(f"d must have shape ({C.shape[0]},), got {d.shape}")
        object.__setattr__(self, "C", C)
        object.__setattr__(self, "d", d)

    @property
    def is_sparse(self) -> bool:
        return _sparse is not None and _sparse.issparse(self.C)

    @property
    def num_constraints(self) -> int:
        return int(self.C.shape[0])

    @property
    def num_variables(self) -> int:
        return int(self.C.shape[1])

    def violation(self, x: np.ndarray) -> float:
        """Squared Euclidean violation ``||Cx - d||^2`` of an assignment."""
        x = np.asarray(x, dtype=np.float64)
        residual = self.C @ x - self.d
        return float(residual @ residual)

    def is_satisfied(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Whether ``x`` satisfies every constraint within ``tol``."""
        return self.violation(x) <= tol

    def penalty_qubo(self, storage: str = "auto") -> QUBOModel:
        """QUBO whose energy equals ``||Cx - d||^2`` for binary ``x``.

        Expanding the norm gives ``x^T (C^T C) x - 2 d^T C x + d^T d``; the
        linear part is folded onto the diagonal because ``x_i^2 = x_i``.
        ``C^T C`` is computed sparsely (scipy spGEMM) and coalesced through a
        :class:`QUBOAccumulator`; ``storage`` picks the result backend
        (``"auto"`` keeps CSR only inside the sparse backend regime).
        """
        n = self.num_variables
        if _sparse is None:
            # Dense fallback when scipy is unavailable.
            CtC = self.C.T @ self.C
            linear = -2.0 * (self.d @ self.C)
            Q = CtC.copy()
            Q[np.diag_indices_from(Q)] += linear
            return QUBOModel(Q, offset=float(self.d @ self.d), name="penalty")
        C = self.C if self.is_sparse else _sparse.csr_array(np.asarray(self.C))
        CtC = (C.T @ C).tocoo()
        linear = np.asarray(-2.0 * (self.d @ C))
        accumulator = QUBOAccumulator(n)
        accumulator.add_quadratic(CtC.coords[0], CtC.coords[1], CtC.data)
        nonzero = np.nonzero(linear)[0]
        accumulator.add_linear(nonzero, linear[nonzero])
        accumulator.add_constant(float(self.d @ self.d))
        return accumulator.build(name="penalty", storage=storage)


class PenaltyQUBOBuilder:
    """Combine an objective QUBO with constraint penalties scaled by ``A``.

    A thin compatibility wrapper over :class:`~repro.qubo.expression.RelaxedEncoding`:
    the builder owns an encoding and :meth:`build` delegates to
    :meth:`RelaxedEncoding.relax`, which composes ``H_B + A * H_A``
    storage-preservingly and caches the most recent relaxed models.

    Parameters
    ----------
    objective:
        QUBO encoding the original objective (the paper's ``H_B``).
    constraints:
        Linear equality constraints, or a pre-built penalty QUBO (``H_A``).
    """

    def __init__(
        self,
        objective: QUBOModel,
        constraints: LinearConstraints | QUBOModel,
    ) -> None:
        if isinstance(constraints, LinearConstraints):
            if constraints.num_variables != objective.num_variables:
                raise ValueError(
                    "constraints are defined over a different number of variables "
                    f"({constraints.num_variables} vs {objective.num_variables})"
                )
            self._constraints: Optional[LinearConstraints] = constraints
            penalty = constraints.penalty_qubo()
        else:
            if constraints.num_variables != objective.num_variables:
                raise ValueError("penalty QUBO size does not match the objective")
            self._constraints = None
            penalty = constraints
        self._encoding = RelaxedEncoding(
            objective=objective, penalty=penalty, name=objective.name or "relaxed"
        )

    @classmethod
    def from_encoding(cls, encoding: RelaxedEncoding) -> "PenaltyQUBOBuilder":
        """Wrap an existing encoding (shares its per-parameter relaxation cache)."""
        builder = cls.__new__(cls)
        builder._constraints = None
        builder._encoding = encoding
        return builder

    @property
    def encoding(self) -> RelaxedEncoding:
        """The frozen ``(objective, penalty)`` encoding behind this builder."""
        return self._encoding

    @property
    def objective(self) -> QUBOModel:
        return self._encoding.objective

    @property
    def penalty(self) -> QUBOModel:
        return self._encoding.penalty

    def build(self, relaxation_parameter: float) -> QUBOModel:
        """Return ``objective + A * penalty`` for the given relaxation parameter."""
        return self._encoding.relax(relaxation_parameter)

    def objective_energy(self, x: np.ndarray) -> float:
        """Original objective value of an assignment (independent of ``A``)."""
        return self._encoding.objective_energy(x)

    def penalty_energy(self, x: np.ndarray) -> float:
        """Constraint-violation energy of an assignment (independent of ``A``)."""
        return self._encoding.penalty_energy(x)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Whether an assignment satisfies the constraints (penalty energy ~ 0)."""
        return self._encoding.is_feasible(x, tol=tol)


def slack_encode_inequality(
    coefficients: Sequence[float],
    bound: float,
) -> tuple[np.ndarray, float, int]:
    """Encode ``sum_i c_i x_i <= bound`` as an equality with binary slack bits.

    Returns the extended coefficient row, the unchanged bound and the number of
    slack bits appended.  The slack bits use a binary expansion whose top
    weight is capped at ``max_slack - (2**(k-1) - 1)`` so the register's
    maximum is *exactly* the maximum possible slack — a plain power-of-two
    expansion overshoots for non-power-of-two ``max_slack`` and would let the
    solver encode slack values no feasible assignment can have.
    """
    coeffs = np.asarray(coefficients, dtype=np.float64)
    max_slack = float(bound - coeffs[coeffs < 0].sum())
    if max_slack < 0:
        raise ValueError("constraint is infeasible for every binary assignment")
    num_slack = max(1, int(np.ceil(np.log2(max_slack + 1)))) if max_slack > 0 else 0
    slack_weights = [2.0**k for k in range(max(0, num_slack - 1))]
    if num_slack:
        slack_weights.append(max_slack - (2.0 ** (num_slack - 1) - 1.0))
    extended = np.concatenate([coeffs, np.asarray(slack_weights)])
    return extended, float(bound), num_slack
