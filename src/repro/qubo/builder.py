"""Penalty-based QUBO construction for linearly-constrained binary programmes.

The paper's starting point is the relaxation

.. math::

    \\min_{x \\in \\{0,1\\}^n} x^T Q x \\quad \\text{s.t. } Cx = d
    \\;\\longrightarrow\\;
    \\min_{x \\in \\{0,1\\}^n} x^T Q x + A \\, \\lVert Cx - d \\rVert^2

where ``A`` is the relaxation (penalty) parameter QROSS tunes.  This module
provides that conversion for arbitrary linear equality constraints, plus a
small helper for inequality constraints via slack variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.qubo.model import QUBOModel
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LinearConstraints:
    """Equality constraints ``C x = d`` over binary variables."""

    C: np.ndarray
    d: np.ndarray

    def __post_init__(self) -> None:
        C = np.asarray(self.C, dtype=np.float64)
        d = np.asarray(self.d, dtype=np.float64)
        if C.ndim != 2:
            raise ValueError(f"C must be 2-D, got shape {C.shape}")
        if d.shape != (C.shape[0],):
            raise ValueError(f"d must have shape ({C.shape[0]},), got {d.shape}")
        object.__setattr__(self, "C", C)
        object.__setattr__(self, "d", d)

    @property
    def num_constraints(self) -> int:
        return int(self.C.shape[0])

    @property
    def num_variables(self) -> int:
        return int(self.C.shape[1])

    def violation(self, x: np.ndarray) -> float:
        """Squared Euclidean violation ``||Cx - d||^2`` of an assignment."""
        x = np.asarray(x, dtype=np.float64)
        residual = self.C @ x - self.d
        return float(residual @ residual)

    def is_satisfied(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Whether ``x`` satisfies every constraint within ``tol``."""
        return self.violation(x) <= tol

    def penalty_qubo(self) -> QUBOModel:
        """QUBO whose energy equals ``||Cx - d||^2`` for binary ``x``.

        Expanding the norm gives ``x^T (C^T C) x - 2 d^T C x + d^T d``; the
        linear part is folded onto the diagonal because ``x_i^2 = x_i``.
        """
        CtC = self.C.T @ self.C
        linear = -2.0 * (self.d @ self.C)
        Q = CtC.copy()
        Q[np.diag_indices_from(Q)] += linear
        return QUBOModel(Q, offset=float(self.d @ self.d), name="penalty")


class PenaltyQUBOBuilder:
    """Combine an objective QUBO with constraint penalties scaled by ``A``.

    Parameters
    ----------
    objective:
        QUBO encoding the original objective (the paper's ``H_B``).
    constraints:
        Linear equality constraints, or a pre-built penalty QUBO (``H_A``).
    """

    def __init__(
        self,
        objective: QUBOModel,
        constraints: LinearConstraints | QUBOModel,
    ) -> None:
        self._objective = objective
        if isinstance(constraints, LinearConstraints):
            if constraints.num_variables != objective.num_variables:
                raise ValueError(
                    "constraints are defined over a different number of variables "
                    f"({constraints.num_variables} vs {objective.num_variables})"
                )
            self._constraints: Optional[LinearConstraints] = constraints
            self._penalty = constraints.penalty_qubo()
        else:
            if constraints.num_variables != objective.num_variables:
                raise ValueError("penalty QUBO size does not match the objective")
            self._constraints = None
            self._penalty = constraints

    @property
    def objective(self) -> QUBOModel:
        return self._objective

    @property
    def penalty(self) -> QUBOModel:
        return self._penalty

    def build(self, relaxation_parameter: float) -> QUBOModel:
        """Return ``objective + A * penalty`` for the given relaxation parameter."""
        A = check_positive(relaxation_parameter, "relaxation_parameter")
        combined = self._objective + self._penalty.scaled(A)
        combined.name = self._objective.name or "relaxed"
        return combined

    def objective_energy(self, x: np.ndarray) -> float:
        """Original objective value of an assignment (independent of ``A``)."""
        return self._objective.energy(x)

    def penalty_energy(self, x: np.ndarray) -> float:
        """Constraint-violation energy of an assignment (independent of ``A``)."""
        return self._penalty.energy(x)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Whether an assignment satisfies the constraints (penalty energy ~ 0)."""
        return self.penalty_energy(x) <= tol


def slack_encode_inequality(
    coefficients: Sequence[float],
    bound: float,
) -> tuple[np.ndarray, float, int]:
    """Encode ``sum_i c_i x_i <= bound`` as an equality with binary slack bits.

    Returns the extended coefficient row, the unchanged bound and the number of
    slack bits appended.  The slack bits use a standard binary expansion large
    enough to cover the maximum possible slack.
    """
    coeffs = np.asarray(coefficients, dtype=np.float64)
    max_slack = float(bound - coeffs[coeffs < 0].sum())
    if max_slack < 0:
        raise ValueError("constraint is infeasible for every binary assignment")
    num_slack = max(1, int(np.ceil(np.log2(max_slack + 1)))) if max_slack > 0 else 0
    slack_weights = [2.0**k for k in range(num_slack)]
    extended = np.concatenate([coeffs, np.asarray(slack_weights)])
    return extended, float(bound), num_slack
