"""QUBO substrate: model representation, penalty construction and sample batches."""

from repro.qubo.builder import LinearConstraints, PenaltyQUBOBuilder, slack_encode_inequality
from repro.qubo.expression import QUBOAccumulator, RelaxedEncoding
from repro.qubo.model import IsingModel, QUBOModel, random_qubo
from repro.qubo.precision import AnalogNoiseModel, QuantizationModel
from repro.qubo.sampleset import SampleRecord, SampleSet

__all__ = [
    "QUBOModel",
    "IsingModel",
    "random_qubo",
    "QUBOAccumulator",
    "RelaxedEncoding",
    "LinearConstraints",
    "PenaltyQUBOBuilder",
    "slack_encode_inequality",
    "AnalogNoiseModel",
    "QuantizationModel",
    "SampleRecord",
    "SampleSet",
]
