"""QUBO model representation and energy evaluation.

A QUBO (quadratic unconstrained binary optimisation) problem is

.. math:: \\min_{x \\in \\{0,1\\}^n} \\; x^T Q x + c

where :math:`Q` is an upper-triangular (or symmetric) real matrix and ``c`` an
optional constant offset.  The model stores ``Q`` densely because the problem
sizes studied in the paper (TSP with up to ~90 cities, i.e. a few thousand
binary variables) fit comfortably in memory, and dense matrices let the solvers
vectorise batched energy / local-field computations with numpy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

try:  # pragma: no cover - scipy ships with the toolchain but stay importable without it
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover
    _sparse = None

from repro.utils.validation import check_square_matrix

#: A model denser than this keeps the dense float64 backend.  Deliberately
#: strict: at borderline densities (~0.2, e.g. TSP QUBOs) the CSR row gathers
#: cost more than dense BLAS saves, and the sparse backend only starts winning
#: clearly below ~10% density on large instances.
SPARSE_DENSITY_THRESHOLD = 0.10
#: Below this size the dense backend always wins (sparse overhead dominates).
SPARSE_MIN_VARIABLES = 512


class DenseOperator:
    """Dense float64 view of ``Q`` exposing the kernels the solvers need.

    The solver engine never touches ``Q`` directly; it goes through this small
    interface (``right_multiply`` / ``rows`` / ``block_product``) so that the
    same annealing code runs unchanged on the CSR backend.
    """

    kind = "dense"

    def __init__(self, Q: np.ndarray) -> None:
        self._Q = np.ascontiguousarray(Q, dtype=np.float64)
        self.diag = np.ascontiguousarray(np.diag(self._Q))

    @property
    def num_variables(self) -> int:
        return int(self._Q.shape[0])

    def right_multiply(self, X: np.ndarray) -> np.ndarray:
        """``X @ Q`` for a batch of states — initialises local fields."""
        return np.asarray(X @ self._Q, dtype=np.float64)

    def rows(self, indices: np.ndarray) -> np.ndarray:
        """Dense gather of the requested rows, shape ``(len(indices), n)``."""
        return self._Q[indices]

    def row(self, index: int) -> np.ndarray:
        """Single dense row — a view for the dense backend (no copy)."""
        return self._Q[index]

    def block_product(self, dX_block: np.ndarray, block: np.ndarray) -> np.ndarray:
        """``dX_block @ Q[block, :]`` — the local-field update of a block flip."""
        return np.asarray(dX_block @ self._Q[block], dtype=np.float64)


class SparseOperator:
    """CSR float32 backend for sparse models (e.g. MVC QUBOs).

    Coefficients are stored in single precision: the annealers only use them to
    steer the search, and every returned energy is re-evaluated against the
    exact dense float64 model, so the float32 rounding never leaks into
    reported results.  Local fields accumulate in float64.
    """

    kind = "sparse"

    def __init__(self, Q: np.ndarray) -> None:
        if _sparse is None:  # pragma: no cover - defensive
            raise RuntimeError("scipy is required for the sparse QUBO backend")
        self._Q = _sparse.csr_array(np.asarray(Q, dtype=np.float32))
        self.diag = np.asarray(np.diag(Q), dtype=np.float64)
        # Raw CSR triplet: row gathers go through these directly because
        # scipy's fancy row indexing spends ~100x the gather cost on index
        # validation and matrix construction, which dominates per-step use.
        self._indptr = self._Q.indptr
        self._indices = self._Q.indices
        self._data = self._Q.data.astype(np.float64)

    @property
    def num_variables(self) -> int:
        return int(self._Q.shape[0])

    def right_multiply(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X @ self._Q, dtype=np.float64)

    def rows(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        out = np.zeros((indices.size, self.num_variables), dtype=np.float64)
        for k, i in enumerate(indices):
            start, end = self._indptr[i], self._indptr[i + 1]
            out[k, self._indices[start:end]] = self._data[start:end]
        return out

    def row(self, index: int) -> np.ndarray:
        out = np.zeros(self.num_variables, dtype=np.float64)
        start, end = self._indptr[index], self._indptr[index + 1]
        out[self._indices[start:end]] = self._data[start:end]
        return out

    def block_product(self, dX_block: np.ndarray, block: np.ndarray) -> np.ndarray:
        return dX_block @ self.rows(block)


@dataclass(frozen=True)
class IsingModel:
    """Ising form ``h . s + s^T J s + offset`` with spins in {-1, +1}.

    ``J`` is symmetric with a zero diagonal; the quadratic term therefore counts
    every pair twice (``J_ij s_i s_j + J_ji s_j s_i``), matching the QUBO
    convention used by :class:`QUBOModel`.
    """

    h: np.ndarray
    J: np.ndarray
    offset: float

    @property
    def num_variables(self) -> int:
        return int(self.h.shape[0])


class QUBOModel:
    """Dense QUBO model ``x^T Q x + offset`` over binary variables.

    Parameters
    ----------
    Q:
        Square coefficient matrix.  It is stored internally in *symmetrised*
        form ``(Q + Q^T) / 2`` which leaves the quadratic form unchanged and
        simplifies incremental energy updates in the solvers.
    offset:
        Constant added to every energy.
    name:
        Optional human-readable label used in reports.
    """

    def __init__(self, Q: np.ndarray, offset: float = 0.0, name: str = "") -> None:
        Q = check_square_matrix(Q, "Q")
        self._Q = (Q + Q.T) / 2.0
        self._offset = float(offset)
        self.name = name
        self._operators: Dict[str, object] = {}
        self._coefficient_stats: Optional[Tuple[float, float]] = None
        self._density: Optional[float] = None

    # ------------------------------------------------------------------ basic
    @property
    def Q(self) -> np.ndarray:
        """Symmetrised coefficient matrix (read-only view)."""
        view = self._Q.view()
        view.flags.writeable = False
        return view

    @property
    def offset(self) -> float:
        return self._offset

    @property
    def num_variables(self) -> int:
        return int(self._Q.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"QUBOModel(n={self.num_variables}, offset={self._offset:.4g}, name={self.name!r})"

    # ---------------------------------------------------------------- algebra
    @classmethod
    def from_dict(
        cls,
        coefficients: Mapping[Tuple[int, int], float],
        num_variables: int | None = None,
        offset: float = 0.0,
        name: str = "",
    ) -> "QUBOModel":
        """Build a model from a ``{(i, j): value}`` mapping (dimod-style)."""
        if num_variables is None:
            if not coefficients:
                raise ValueError("num_variables is required for an empty coefficient dict")
            num_variables = 1 + max(max(i, j) for i, j in coefficients)
        Q = np.zeros((num_variables, num_variables), dtype=np.float64)
        for (i, j), value in coefficients.items():
            if not (0 <= i < num_variables and 0 <= j < num_variables):
                raise ValueError(f"index ({i}, {j}) out of range for n={num_variables}")
            Q[i, j] += float(value)
        return cls(Q, offset=offset, name=name)

    def to_dict(self, tol: float = 0.0) -> Dict[Tuple[int, int], float]:
        """Return upper-triangular ``{(i, j): value}`` coefficients above ``tol``."""
        coeffs: Dict[Tuple[int, int], float] = {}
        n = self.num_variables
        for i in range(n):
            diag = self._Q[i, i]
            if abs(diag) > tol:
                coeffs[(i, i)] = float(diag)
            for j in range(i + 1, n):
                value = 2.0 * self._Q[i, j]
                if abs(value) > tol:
                    coeffs[(i, j)] = float(value)
        return coeffs

    def scaled(self, factor: float) -> "QUBOModel":
        """Return a new model with every coefficient (and offset) multiplied by ``factor``."""
        return QUBOModel(self._Q * factor, offset=self._offset * factor, name=self.name)

    def __add__(self, other: "QUBOModel") -> "QUBOModel":
        if not isinstance(other, QUBOModel):
            return NotImplemented
        if other.num_variables != self.num_variables:
            raise ValueError(
                f"cannot add QUBOs of different sizes ({self.num_variables} vs {other.num_variables})"
            )
        return QUBOModel(self._Q + other._Q, offset=self._offset + other._offset, name=self.name)

    def __mul__(self, factor: float) -> "QUBOModel":
        return self.scaled(float(factor))

    __rmul__ = __mul__

    # --------------------------------------------------------------- energies
    def energy(self, x: np.ndarray) -> float:
        """Energy of a single binary assignment ``x`` (shape ``(n,)``)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_variables,):
            raise ValueError(f"expected shape ({self.num_variables},), got {x.shape}")
        return float(x @ self._Q @ x + self._offset)

    def energies(self, X: np.ndarray) -> np.ndarray:
        """Energies of a batch of assignments ``X`` (shape ``(batch, n)``)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.num_variables:
            raise ValueError(f"expected shape (batch, {self.num_variables}), got {X.shape}")
        return np.einsum("bi,ij,bj->b", X, self._Q, X) + self._offset

    def local_fields(self, X: np.ndarray) -> np.ndarray:
        """Single-flip energy changes for every variable of every assignment.

        For symmetric ``Q`` the change of energy when flipping variable ``i`` of
        assignment ``x`` is ``dE_i = (1 - 2 x_i) * (Q_ii + 2 * sum_{j != i} Q_ij x_j)``.
        Returns an array of shape ``(batch, n)``.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.num_variables:
            raise ValueError(f"expected shape (batch, {self.num_variables}), got {X.shape}")
        diag = np.diag(self._Q)
        # 2 * Q x includes 2*Q_ii*x_i; subtract the extra diagonal contribution.
        field = 2.0 * X @ self._Q - 2.0 * X * diag + diag
        return (1.0 - 2.0 * X) * field

    # --------------------------------------------------------------- convert
    def to_ising(self) -> IsingModel:
        """Convert to Ising form using ``x = (1 + s) / 2``."""
        Q = self._Q
        n = self.num_variables
        J = Q / 4.0
        np.fill_diagonal(J, 0.0)
        h = Q.sum(axis=1) / 2.0
        offset = self._offset + Q.sum() / 4.0 + np.trace(Q) / 4.0
        return IsingModel(h=h, J=J, offset=float(offset))

    @classmethod
    def from_ising(cls, ising: IsingModel, name: str = "") -> "QUBOModel":
        """Convert an Ising model back into QUBO form."""
        h = np.asarray(ising.h, dtype=np.float64)
        J = check_square_matrix(ising.J, "J")
        J = (J + J.T) / 2.0
        np_diag = np.diag(J).copy()
        if np.any(np_diag != 0):
            raise ValueError("Ising J must have a zero diagonal")
        n = h.shape[0]
        Q = 4.0 * J
        diag = 2.0 * h - 4.0 * J.sum(axis=1)
        Q = Q.copy()
        np.fill_diagonal(Q, diag)
        offset = ising.offset - h.sum() + J.sum()
        return cls(Q, offset=float(offset), name=name)

    # ------------------------------------------------------------- operators
    def density(self) -> float:
        """Fraction of non-zero coefficients in the symmetrised matrix.

        Cached: solvers consult it on every ``sample`` call via
        :meth:`operator`, and the ``O(n^2)`` scan would otherwise repeat.
        """
        if self._density is None:
            n = self.num_variables
            if n == 0:
                self._density = 0.0
            else:
                self._density = float(np.count_nonzero(self._Q)) / float(n * n)
        return self._density

    def operator(self, backend: str | None = None):
        """Return the solver-facing coefficient backend for this model.

        ``backend`` may be ``"dense"``, ``"sparse"`` or ``None`` for automatic
        selection: models with at least :data:`SPARSE_MIN_VARIABLES` variables
        and density below :data:`SPARSE_DENSITY_THRESHOLD` get the CSR float32
        backend, everything else the dense float64 one.  Operators are cached
        on the model, so repeated solver calls reuse the same arrays.
        """
        if backend is None:
            use_sparse = (
                _sparse is not None
                and self.num_variables >= SPARSE_MIN_VARIABLES
                and self.density() < SPARSE_DENSITY_THRESHOLD
            )
            backend = "sparse" if use_sparse else "dense"
        if backend not in ("dense", "sparse"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend not in self._operators:
            if backend == "sparse":
                self._operators[backend] = SparseOperator(self._Q)
            else:
                self._operators[backend] = DenseOperator(self._Q)
        return self._operators[backend]

    def coefficient_stats(self) -> Tuple[float, float]:
        """Cached ``(max_abs_row_sum, min_nonzero_abs)`` of the coefficients.

        These drive the automatic temperature range; caching them means
        repeated solver calls on the same model skip the ``O(n^2)`` scan.
        """
        if self._coefficient_stats is None:
            abs_Q = np.abs(self._Q)
            max_row = float(abs_Q.sum(axis=1).max(initial=1.0))
            nonzero = abs_Q[abs_Q > 0]
            min_nonzero = float(nonzero.min()) if nonzero.size else 1.0
            self._coefficient_stats = (max_row, min_nonzero)
        return self._coefficient_stats

    # ------------------------------------------------------------------ misc
    def max_abs_coefficient(self) -> float:
        """Largest absolute coefficient, used for normalisation and noise models."""
        return float(np.abs(self._Q).max(initial=0.0))

    def fingerprint(self) -> str:
        """Stable hash of the coefficients, usable as a cache key."""
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self._Q).tobytes())
        digest.update(np.float64(self._offset).tobytes())
        return digest.hexdigest()[:16]


def random_qubo(
    num_variables: int,
    density: float = 1.0,
    scale: float = 1.0,
    rng: np.random.Generator | None = None,
    name: str = "random",
) -> QUBOModel:
    """Generate a random QUBO with Gaussian coefficients (testing / benchmarking aid)."""
    from repro.utils.rng import ensure_rng

    if num_variables <= 0:
        raise ValueError("num_variables must be positive")
    if not (0.0 < density <= 1.0):
        raise ValueError("density must lie in (0, 1]")
    rng = ensure_rng(rng)
    Q = rng.normal(0.0, scale, size=(num_variables, num_variables))
    Q = (Q + Q.T) / 2.0
    if density < 1.0:
        mask = rng.random((num_variables, num_variables)) < density
        mask = np.triu(mask) | np.triu(mask).T
        Q = np.where(mask, Q, 0.0)
    return QUBOModel(Q, name=name)
