"""QUBO model representation and energy evaluation.

A QUBO (quadratic unconstrained binary optimisation) problem is

.. math:: \\min_{x \\in \\{0,1\\}^n} \\; x^T Q x + c

where :math:`Q` is an upper-triangular (or symmetric) real matrix and ``c`` an
optional constant offset.  The model is *storage polymorphic*: ``Q`` may be a
dense float64 ndarray (the historical representation, ideal for the
few-thousand-variable TSP instances studied in the paper) or a scipy CSR
matrix, which lets sparse problem classes — MVC on large sparse graphs in
particular — be encoded, fingerprinted and solved without ever allocating an
``n x n`` dense array.  Every public operation (``energy`` / ``energies`` /
``local_fields`` / ``scaled`` / ``__add__`` / ``to_dict`` / ``to_ising`` /
``operator``) works on both storages; a sparse model inside the CSR backend
regime (at least :data:`SPARSE_MIN_VARIABLES` variables and density below
:data:`SPARSE_DENSITY_THRESHOLD`) is never silently densified — dense views of
such models go through the explicit :meth:`QUBOModel.dense_Q`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.sparse import issparse as _is_sparse, scipy_sparse as _sparse

from repro.utils.validation import check_square_matrix

#: A model denser than this keeps the dense float64 backend.  Deliberately
#: strict: at borderline densities (~0.2, e.g. TSP QUBOs) the CSR row gathers
#: cost more than dense BLAS saves, and the sparse backend only starts winning
#: clearly below ~10% density on large instances.
SPARSE_DENSITY_THRESHOLD = 0.10
#: Below this size the dense backend always wins (sparse overhead dominates).
SPARSE_MIN_VARIABLES = 512


def _canonical_csr(matrix):
    """Canonical float64 CSR: sorted indices, duplicates summed, no stored zeros.

    Canonical form makes sparse reductions deterministic (they visit entries in
    the same row-major order a dense scan would) and keeps ``nnz`` equal to the
    true number of non-zero coefficients, so density and fingerprints agree
    with the dense storage of the same model.
    """
    csr = _sparse.csr_array(matrix).astype(np.float64)
    csr.sum_duplicates()
    csr.sort_indices()
    csr.eliminate_zeros()
    return csr


class DenseOperator:
    """Dense float64 view of ``Q`` exposing the kernels the solvers need.

    The solver engine never touches ``Q`` directly; it goes through this small
    interface (``right_multiply`` / ``rows`` / ``block_product``) so that the
    same annealing code runs unchanged on the CSR backend.
    """

    kind = "dense"

    def __init__(self, Q: np.ndarray) -> None:
        self._Q = np.ascontiguousarray(Q, dtype=np.float64)
        self.diag = np.ascontiguousarray(np.diag(self._Q))
        self._adapted: Dict[tuple, object] = {}

    @property
    def num_variables(self) -> int:
        return int(self._Q.shape[0])

    def right_multiply(self, X: np.ndarray) -> np.ndarray:
        """``X @ Q`` for a batch of states — initialises local fields."""
        return np.asarray(X @ self._Q, dtype=np.float64)

    def rows(self, indices: np.ndarray) -> np.ndarray:
        """Dense gather of the requested rows, shape ``(len(indices), n)``."""
        return self._Q[indices]

    def row(self, index: int) -> np.ndarray:
        """Single dense row — a view for the dense backend (no copy)."""
        return self._Q[index]

    def block_product(self, dX_block: np.ndarray, block: np.ndarray) -> np.ndarray:
        """``dX_block @ Q[block, :]`` — the local-field update of a block flip."""
        return np.asarray(dX_block @ self._Q[block], dtype=np.float64)

    def to_backend(self, ab):
        """This operator's coefficients on array backend ``ab`` (memoised).

        Called by :meth:`repro.compute.ArrayBackend.adapt_operator` for every
        non-reference backend; the reference numpy/float64 path uses ``self``
        directly and never reaches here.
        """
        key = ab.cache_key()
        cached = self._adapted.get(key)
        if cached is None:
            from repro.compute.operators import BackendDenseOperator

            cached = self._adapted[key] = BackendDenseOperator(self._Q, self.diag, ab)
        return cached


class SparseOperator:
    """CSR float32 backend for sparse models (e.g. MVC QUBOs).

    Accepts either a dense symmetric ``Q`` or a canonical float64 CSR matrix —
    both produce bit-identical operator data, so solver trajectories do not
    depend on how the model was stored.  Coefficients are held in single
    precision: the annealers only use them to steer the search, and every
    returned energy is re-evaluated against the exact float64 model, so the
    float32 rounding never leaks into reported results.  Local fields
    accumulate in float64.
    """

    kind = "sparse"

    def __init__(self, Q) -> None:
        if _sparse is None:  # pragma: no cover - defensive
            raise RuntimeError("scipy is required for the sparse QUBO backend")
        if _is_sparse(Q):
            exact = _canonical_csr(Q)
            self._Q = exact.astype(np.float32)
            self.diag = np.asarray(exact.diagonal(), dtype=np.float64)
        else:
            self._Q = _sparse.csr_array(np.asarray(Q, dtype=np.float32))
            self.diag = np.asarray(np.diag(Q), dtype=np.float64)
        # Raw CSR triplet: row gathers go through these directly because
        # scipy's fancy row indexing spends ~100x the gather cost on index
        # validation and matrix construction, which dominates per-step use.
        self._indptr = self._Q.indptr
        self._indices = self._Q.indices
        self._data = self._Q.data.astype(np.float64)
        self._adapted: Dict[tuple, object] = {}

    @property
    def num_variables(self) -> int:
        return int(self._Q.shape[0])

    def right_multiply(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X @ self._Q, dtype=np.float64)

    def rows(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        out = np.zeros((indices.size, self.num_variables), dtype=np.float64)
        for k, i in enumerate(indices):
            start, end = self._indptr[i], self._indptr[i + 1]
            out[k, self._indices[start:end]] = self._data[start:end]
        return out

    def row(self, index: int) -> np.ndarray:
        out = np.zeros(self.num_variables, dtype=np.float64)
        start, end = self._indptr[index], self._indptr[index + 1]
        out[self._indices[start:end]] = self._data[start:end]
        return out

    def block_product(self, dX_block: np.ndarray, block: np.ndarray) -> np.ndarray:
        return dX_block @ self.rows(block)

    def to_backend(self, ab):
        """This operator's CSR triplet on array backend ``ab`` (memoised).

        The float64 ``_data`` (not the float32 CSR) seeds the backend copy so
        a float64 torch/CuPy run steers with the same precision the reference
        engine would.
        """
        key = ab.cache_key()
        cached = self._adapted.get(key)
        if cached is None:
            from repro.compute.operators import BackendSparseOperator

            cached = self._adapted[key] = BackendSparseOperator(
                self._data,
                self._indices,
                self._indptr,
                self._Q.shape,
                self.diag,
                ab,
            )
        return cached


@dataclass(frozen=True)
class IsingModel:
    """Ising form ``h . s + s^T J s + offset`` with spins in {-1, +1}.

    ``J`` is symmetric with a zero diagonal; the quadratic term therefore counts
    every pair twice (``J_ij s_i s_j + J_ji s_j s_i``), matching the QUBO
    convention used by :class:`QUBOModel`.  ``J`` is a dense ndarray when the
    source QUBO was dense and a CSR matrix when it was sparse.
    """

    h: np.ndarray
    J: np.ndarray
    offset: float

    @property
    def num_variables(self) -> int:
        return int(self.h.shape[0])


class QUBOModel:
    """QUBO model ``x^T Q x + offset`` over binary variables.

    Parameters
    ----------
    Q:
        Square coefficient matrix — a dense ndarray or a scipy sparse matrix.
        It is stored internally in *symmetrised* form ``(Q + Q^T) / 2`` which
        leaves the quadratic form unchanged and simplifies incremental energy
        updates in the solvers; sparse input stays sparse (canonical CSR).
    offset:
        Constant added to every energy.
    name:
        Optional human-readable label used in reports.
    """

    def __init__(self, Q, offset: float = 0.0, name: str = "") -> None:
        if _is_sparse(Q):
            if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
                raise ValueError(f"Q must be a square 2-D array, got shape {Q.shape}")
            csr = _canonical_csr(Q)
            self._Q = _canonical_csr((csr + csr.T) / 2.0)
            self._storage = "sparse"
        else:
            Q = check_square_matrix(Q, "Q")
            self._Q = (Q + Q.T) / 2.0
            self._storage = "dense"
        self._offset = float(offset)
        self.name = name
        self._operators: Dict[str, object] = {}
        self._coefficient_stats: Optional[Tuple[float, float]] = None
        self._density: Optional[float] = None
        self._fingerprint: Optional[str] = None
        self._dense_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ basic
    @property
    def storage(self) -> str:
        """Coefficient storage backend: ``"dense"`` or ``"sparse"``."""
        return self._storage

    @property
    def is_sparse(self) -> bool:
        return self._storage == "sparse"

    def in_sparse_regime(self) -> bool:
        """Whether this model falls inside the CSR auto-backend thresholds."""
        return (
            self.num_variables >= SPARSE_MIN_VARIABLES
            and self.density() < SPARSE_DENSITY_THRESHOLD
        )

    def _dense(self) -> np.ndarray:
        """Dense float64 coefficient array (cached); the densification choke point.

        Every dense materialisation of a sparse-stored model funnels through
        here, which is what lets tests assert that the sparse encode/solve path
        never densifies.
        """
        if self._storage == "dense":
            return self._Q
        if self._dense_cache is None:
            self._dense_cache = np.asarray(self._Q.toarray(), dtype=np.float64)
        return self._dense_cache

    @property
    def Q(self) -> np.ndarray:
        """Symmetrised dense coefficient matrix (read-only view).

        For sparse-stored models this densifies only *below* the CSR backend
        thresholds (small or near-dense models, where a dense copy is what the
        solvers would build anyway).  Inside the sparse regime it raises —
        call :meth:`dense_Q` to densify explicitly or :meth:`sparse_Q` for the
        CSR form.
        """
        if self._storage == "sparse" and self.in_sparse_regime():
            raise ValueError(
                f"model {self.name!r} (n={self.num_variables}, "
                f"density={self.density():.4f}) is stored sparse and lies inside the "
                "CSR backend regime; refusing to densify silently. Use "
                "dense_Q() to densify explicitly or sparse_Q() for the CSR form."
            )
        view = self._dense().view()
        view.flags.writeable = False
        return view

    def dense_Q(self) -> np.ndarray:
        """Explicit dense float64 view of the coefficients (read-only)."""
        view = self._dense().view()
        view.flags.writeable = False
        return view

    def sparse_Q(self):
        """Coefficients as a canonical float64 CSR matrix (converting if dense)."""
        if _sparse is None:
            raise RuntimeError("scipy is required for sparse_Q()")
        if self._storage == "sparse":
            return self._Q
        return _canonical_csr(_sparse.csr_array(self._Q))

    def with_storage(self, storage: str) -> "QUBOModel":
        """This model converted to the requested storage (``self`` if already there)."""
        if storage not in ("dense", "sparse"):
            raise ValueError(f"unknown storage {storage!r}")
        if storage == self._storage:
            return self
        if storage == "sparse":
            return QUBOModel(self.sparse_Q(), offset=self._offset, name=self.name)
        return QUBOModel(self._dense(), offset=self._offset, name=self.name)

    @property
    def offset(self) -> float:
        return self._offset

    @property
    def num_variables(self) -> int:
        return int(self._Q.shape[0])

    def _diagonal(self) -> np.ndarray:
        if self._storage == "sparse":
            return np.asarray(self._Q.diagonal(), dtype=np.float64)
        return np.diag(self._Q)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QUBOModel(n={self.num_variables}, offset={self._offset:.4g}, "
            f"storage={self._storage!r}, name={self.name!r})"
        )

    # ---------------------------------------------------------------- algebra
    @classmethod
    def from_dict(
        cls,
        coefficients: Mapping[Tuple[int, int], float],
        num_variables: int | None = None,
        offset: float = 0.0,
        name: str = "",
    ) -> "QUBOModel":
        """Build a model from a ``{(i, j): value}`` mapping (dimod-style)."""
        if num_variables is None:
            if not coefficients:
                raise ValueError("num_variables is required for an empty coefficient dict")
            num_variables = 1 + max(max(i, j) for i, j in coefficients)
        Q = np.zeros((num_variables, num_variables), dtype=np.float64)
        for (i, j), value in coefficients.items():
            if not (0 <= i < num_variables and 0 <= j < num_variables):
                raise ValueError(f"index ({i}, {j}) out of range for n={num_variables}")
            Q[i, j] += float(value)
        return cls(Q, offset=offset, name=name)

    def to_dict(self, tol: float = 0.0) -> Dict[Tuple[int, int], float]:
        """Return upper-triangular ``{(i, j): value}`` coefficients above ``tol``."""
        if self._storage == "sparse":
            coo = self._Q.tocoo()
            rows = np.asarray(coo.coords[0], dtype=np.int64)
            cols = np.asarray(coo.coords[1], dtype=np.int64)
            vals = np.asarray(coo.data, dtype=np.float64)
        else:
            rows, cols = np.nonzero(self._Q)
            vals = self._Q[rows, cols]
        upper = rows <= cols
        rows, cols, vals = rows[upper], cols[upper], vals[upper]
        vals = np.where(rows == cols, vals, 2.0 * vals)
        keep = np.abs(vals) > tol
        return {
            (int(i), int(j)): float(v)
            for i, j, v in zip(rows[keep], cols[keep], vals[keep])
        }

    def scaled(self, factor: float) -> "QUBOModel":
        """Return a new model with every coefficient (and offset) multiplied by ``factor``."""
        return QUBOModel(self._Q * factor, offset=self._offset * factor, name=self.name)

    def __add__(self, other: "QUBOModel") -> "QUBOModel":
        if not isinstance(other, QUBOModel):
            return NotImplemented
        if other.num_variables != self.num_variables:
            raise ValueError(
                f"cannot add QUBOs of different sizes ({self.num_variables} vs {other.num_variables})"
            )
        offset = self._offset + other._offset
        if self._storage == "sparse" and other._storage == "sparse":
            return QUBOModel(self._Q + other._Q, offset=offset, name=self.name)
        # Mixed storage: the dense operand already holds an n x n array, so the
        # combined model is dense by construction (no hidden memory blow-up).
        return QUBOModel(self._dense() + other._dense(), offset=offset, name=self.name)

    def __mul__(self, factor: float) -> "QUBOModel":
        return self.scaled(float(factor))

    __rmul__ = __mul__

    # --------------------------------------------------------------- energies
    def energy(self, x: np.ndarray) -> float:
        """Energy of a single binary assignment ``x`` (shape ``(n,)``)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.num_variables,):
            raise ValueError(f"expected shape ({self.num_variables},), got {x.shape}")
        if self._storage == "sparse":
            return float(x @ (self._Q @ x) + self._offset)
        return float(x @ self._Q @ x + self._offset)

    def energies(self, X: np.ndarray) -> np.ndarray:
        """Energies of a batch of assignments ``X`` (shape ``(batch, n)``)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.num_variables:
            raise ValueError(f"expected shape (batch, {self.num_variables}), got {X.shape}")
        if self._storage == "sparse":
            return np.asarray((X @ self._Q) * X).sum(axis=1) + self._offset
        return np.einsum("bi,ij,bj->b", X, self._Q, X) + self._offset

    def local_fields(self, X: np.ndarray) -> np.ndarray:
        """Single-flip energy changes for every variable of every assignment.

        For symmetric ``Q`` the change of energy when flipping variable ``i`` of
        assignment ``x`` is ``dE_i = (1 - 2 x_i) * (Q_ii + 2 * sum_{j != i} Q_ij x_j)``.
        Returns an array of shape ``(batch, n)``.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.num_variables:
            raise ValueError(f"expected shape (batch, {self.num_variables}), got {X.shape}")
        diag = self._diagonal()
        # 2 * Q x includes 2*Q_ii*x_i; subtract the extra diagonal contribution.
        field = 2.0 * np.asarray(X @ self._Q) - 2.0 * X * diag + diag
        return (1.0 - 2.0 * X) * field

    # --------------------------------------------------------------- convert
    def to_ising(self) -> IsingModel:
        """Convert to Ising form using ``x = (1 + s) / 2``.

        Sparse models produce a sparse (CSR) ``J`` — the conversion never
        densifies.
        """
        Q = self._Q
        if self._storage == "sparse":
            diag = self._diagonal()
            J = _canonical_csr((Q - _sparse.diags_array(diag)) / 4.0)
            h = np.asarray(Q.sum(axis=1)).ravel() / 2.0
            offset = self._offset + float(Q.sum()) / 4.0 + float(diag.sum()) / 4.0
            return IsingModel(h=h, J=J, offset=float(offset))
        n = self.num_variables
        J = Q / 4.0
        np.fill_diagonal(J, 0.0)
        h = Q.sum(axis=1) / 2.0
        offset = self._offset + Q.sum() / 4.0 + np.trace(Q) / 4.0
        return IsingModel(h=h, J=J, offset=float(offset))

    @classmethod
    def from_ising(cls, ising: IsingModel, name: str = "") -> "QUBOModel":
        """Convert an Ising model back into QUBO form (sparse ``J`` stays sparse)."""
        h = np.asarray(ising.h, dtype=np.float64)
        if _is_sparse(ising.J):
            J = _canonical_csr(ising.J)
            J = _canonical_csr((J + J.T) / 2.0)
            if np.any(J.diagonal() != 0):
                raise ValueError("Ising J must have a zero diagonal")
            diag = 2.0 * h - 4.0 * np.asarray(J.sum(axis=1)).ravel()
            Q = 4.0 * J + _sparse.diags_array(diag)
            offset = ising.offset - h.sum() + float(J.sum())
            return cls(Q, offset=float(offset), name=name)
        J = check_square_matrix(ising.J, "J")
        J = (J + J.T) / 2.0
        np_diag = np.diag(J).copy()
        if np.any(np_diag != 0):
            raise ValueError("Ising J must have a zero diagonal")
        Q = 4.0 * J
        diag = 2.0 * h - 4.0 * J.sum(axis=1)
        Q = Q.copy()
        np.fill_diagonal(Q, diag)
        offset = ising.offset - h.sum() + J.sum()
        return cls(Q, offset=float(offset), name=name)

    # ------------------------------------------------------------- operators
    def density(self) -> float:
        """Fraction of non-zero coefficients in the symmetrised matrix.

        Cached: solvers consult it on every ``sample`` call via
        :meth:`operator`.  Sparse storage reads ``nnz`` directly (the CSR is
        canonical, so stored entries are exactly the non-zeros); dense storage
        pays the ``O(n^2)`` scan once.
        """
        if self._density is None:
            n = self.num_variables
            if n == 0:
                self._density = 0.0
            elif self._storage == "sparse":
                self._density = float(self._Q.nnz) / float(n * n)
            else:
                self._density = float(np.count_nonzero(self._Q)) / float(n * n)
        return self._density

    def operator(self, backend: str | None = None):
        """Return the solver-facing coefficient backend for this model.

        ``backend`` may be ``"dense"``, ``"sparse"`` or ``None`` for automatic
        selection: models with at least :data:`SPARSE_MIN_VARIABLES` variables
        and density below :data:`SPARSE_DENSITY_THRESHOLD` get the CSR float32
        backend, everything else the dense float64 one.  The selection rule
        depends only on the coefficients, not on the storage, so a model built
        sparse and the same model built dense drive the solvers identically.
        Operators are cached on the model, so repeated solver calls reuse the
        same arrays.
        """
        if backend is None:
            use_sparse = _sparse is not None and self.in_sparse_regime()
            backend = "sparse" if use_sparse else "dense"
        if backend not in ("dense", "sparse"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend not in self._operators:
            if backend == "sparse":
                self._operators[backend] = SparseOperator(self._Q)
            else:
                self._operators[backend] = DenseOperator(self._dense())
        return self._operators[backend]

    def coefficient_stats(self) -> Tuple[float, float]:
        """Cached ``(max_abs_row_sum, min_nonzero_abs)`` of the coefficients.

        These drive the automatic temperature range; caching them means
        repeated solver calls on the same model skip the coefficient scan.
        """
        if self._coefficient_stats is None:
            if self._storage == "sparse":
                abs_Q = abs(self._Q)
                row_sums = np.asarray(abs_Q.sum(axis=1)).ravel()
                max_row = float(row_sums.max(initial=1.0))
                data = np.abs(self._Q.data)
                nonzero = data[data > 0]
                min_nonzero = float(nonzero.min()) if nonzero.size else 1.0
            else:
                abs_Q = np.abs(self._Q)
                max_row = float(abs_Q.sum(axis=1).max(initial=1.0))
                nonzero = abs_Q[abs_Q > 0]
                min_nonzero = float(nonzero.min()) if nonzero.size else 1.0
            self._coefficient_stats = (max_row, min_nonzero)
        return self._coefficient_stats

    # ------------------------------------------------------------------ misc
    def max_abs_coefficient(self) -> float:
        """Largest absolute coefficient, used for normalisation and noise models."""
        if self._storage == "sparse":
            return float(np.abs(self._Q.data).max(initial=0.0))
        return float(np.abs(self._Q).max(initial=0.0))

    # ---------------------------------------------------------------- wire I/O
    def to_wire(self) -> Tuple[dict, Tuple[np.ndarray, ...]]:
        """Header + raw numpy buffers for the cross-process wire format.

        Dense models ship the symmetrised ``n x n`` float64 array; sparse
        models ship the canonical CSR triplet — a sparse model is *never*
        densified on its way across a process boundary.  The header carries
        the fingerprint so :meth:`from_wire` can verify the reconstruction.
        Framing (versioning, byte layout) lives in
        :mod:`repro.service.distributed.wire`; this hook only decides what a
        model *is* on the wire.
        """
        header = {
            "storage": self._storage,
            "num_variables": self.num_variables,
            "offset": self._offset,
            "name": self.name,
            "fingerprint": self.fingerprint(),
        }
        if self._storage == "sparse":
            buffers = (
                np.asarray(self._Q.data, dtype=np.float64),
                np.asarray(self._Q.indices, dtype=np.int64),
                np.asarray(self._Q.indptr, dtype=np.int64),
            )
        else:
            buffers = (self._dense(),)
        return header, buffers

    @classmethod
    def from_wire(cls, header: dict, buffers: "Sequence[np.ndarray]") -> "QUBOModel":
        """Rebuild a model from :meth:`to_wire` output, verifying the fingerprint."""
        n = int(header["num_variables"])
        if header["storage"] == "sparse":
            if _sparse is None:
                raise RuntimeError("scipy is required to decode a sparse QUBO model")
            data, indices, indptr = buffers
            Q = _sparse.csr_array(
                (
                    np.asarray(data, dtype=np.float64),
                    np.asarray(indices, dtype=np.int64),
                    np.asarray(indptr, dtype=np.int64),
                ),
                shape=(n, n),
            )
        else:
            (Q,) = buffers
            Q = np.asarray(Q, dtype=np.float64).reshape(n, n)
        model = cls(Q, offset=float(header["offset"]), name=str(header.get("name", "")))
        expected = header.get("fingerprint")
        if expected is not None and model.fingerprint() != expected:
            raise ValueError(
                f"decoded QUBO model fingerprint {model.fingerprint()} does not "
                f"match the encoded fingerprint {expected}; wire payload corrupt"
            )
        return model

    def fingerprint(self) -> str:
        """Stable hash of the coefficients, usable as a cache key.

        Storage invariant: the same mathematical model fingerprints identically
        whether it is held dense or as CSR (the hash covers the canonical COO
        triplets of the symmetrised matrix), so service-level batching and
        deduplication work across storage backends.  Cached — immutable models
        are fingerprinted repeatedly by the request-grouping path.
        """
        if self._fingerprint is None:
            if self._storage == "sparse":
                coo = self._Q.tocoo()
                rows = np.asarray(coo.coords[0], dtype=np.int64)
                cols = np.asarray(coo.coords[1], dtype=np.int64)
                vals = np.asarray(coo.data, dtype=np.float64)
            else:
                rows, cols = np.nonzero(self._Q)
                rows = np.asarray(rows, dtype=np.int64)
                cols = np.asarray(cols, dtype=np.int64)
                vals = np.asarray(self._Q[rows, cols], dtype=np.float64)
            digest = hashlib.sha256()
            digest.update(np.int64(self.num_variables).tobytes())
            digest.update(np.ascontiguousarray(rows).tobytes())
            digest.update(np.ascontiguousarray(cols).tobytes())
            digest.update(np.ascontiguousarray(vals).tobytes())
            digest.update(np.float64(self._offset).tobytes())
            self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint


def random_qubo(
    num_variables: int,
    density: float = 1.0,
    scale: float = 1.0,
    rng: np.random.Generator | None = None,
    name: str = "random",
    storage: str = "dense",
) -> QUBOModel:
    """Generate a random QUBO with Gaussian coefficients (testing / benchmarking aid).

    ``storage="dense"`` (the default, unchanged from earlier releases) draws a
    full ``n x n`` Gaussian matrix and masks it down to ``density``.
    ``storage="sparse"`` instead accumulates COO triplets sized to the target
    density and never allocates a dense intermediate, so instances far beyond
    dense memory limits (``n`` in the hundreds of thousands at low density)
    can be generated directly as CSR models.  The two paths draw different
    random streams, so they are *not* sample-for-sample identical at equal
    seeds; the sparse path's density is exact in expectation (upper-triangle
    positions are drawn i.i.d., duplicates coalesce by summation).
    """
    from repro.utils.rng import ensure_rng

    if num_variables <= 0:
        raise ValueError("num_variables must be positive")
    if not (0.0 < density <= 1.0):
        raise ValueError("density must lie in (0, 1]")
    if storage not in ("dense", "sparse"):
        raise ValueError(f"unknown storage {storage!r}")
    rng = ensure_rng(rng)
    if storage == "sparse":
        if _sparse is None:
            raise RuntimeError("scipy is required for storage='sparse'")
        from repro.qubo.expression import QUBOAccumulator

        n = num_variables
        num_draws = int(round(density * n * (n + 1) / 2.0))
        acc = QUBOAccumulator(n)
        if num_draws:
            i = rng.integers(0, n, size=num_draws)
            j = rng.integers(0, n, size=num_draws)
            rows = np.minimum(i, j)
            cols = np.maximum(i, j)
            values = rng.normal(0.0, scale, size=num_draws)
            acc.add_quadratic(rows, cols, values)
        return acc.build(name=name, storage="sparse")
    Q = rng.normal(0.0, scale, size=(num_variables, num_variables))
    Q = (Q + Q.T) / 2.0
    if density < 1.0:
        mask = rng.random((num_variables, num_variables)) < density
        mask = np.triu(mask) | np.triu(mask).T
        Q = np.where(mask, Q, 0.0)
    return QUBOModel(Q, name=name)
