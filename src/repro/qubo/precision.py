"""Coefficient precision and analog-control-error models.

Appendix B of the paper attributes solution degradation at large penalty
weights to (a) floating-point round-off on classical annealers and (b) analog
control errors on quantum annealers, where the implemented Hamiltonian
coefficients differ from the intended ones.  These models let us reproduce
Fig. 6 without quantum hardware: a solver is wrapped so that it optimises a
*perturbed* QUBO while solutions are still scored against the exact one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.qubo.model import QUBOModel
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class AnalogNoiseModel:
    """Multiplicative + additive Gaussian perturbation of QUBO coefficients.

    Each coefficient ``q`` becomes ``q * (1 + eps_m) + eps_a * scale`` where
    ``eps_m ~ N(0, relative_error)``, ``eps_a ~ N(0, absolute_error)`` and
    ``scale`` is the dynamic range of the coefficient matrix.  This mirrors the
    analog control error of annealing hardware: the error floor is fixed by the
    device, so when the penalty term inflates the dynamic range the *objective*
    part of the Hamiltonian drowns in noise.
    """

    relative_error: float = 0.0
    absolute_error: float = 0.0

    def __post_init__(self) -> None:
        if self.relative_error < 0 or self.absolute_error < 0:
            raise ValueError("error magnitudes must be non-negative")

    def perturb(self, model: QUBOModel, rng: RngLike = None) -> QUBOModel:
        """Return a perturbed copy of ``model``.

        Sparse-stored models are perturbed structure-preservingly: the noise is
        applied to the stored (implemented) couplings only, mirroring hardware
        that only realises the couplings present in the program — and the model
        is never densified.
        """
        rng = ensure_rng(rng)
        scale = model.max_abs_coefficient()
        if model.is_sparse:
            Q = model.sparse_Q().copy()
            data = Q.data.copy()
            if self.relative_error > 0:
                data = data * (1.0 + rng.normal(0.0, self.relative_error, size=data.shape))
            if self.absolute_error > 0 and scale > 0:
                data = data + rng.normal(0.0, self.absolute_error * scale, size=data.shape)
            Q.data = data
            return QUBOModel(Q, offset=model.offset, name=model.name)
        Q = np.array(model.Q, dtype=np.float64, copy=True)
        if self.relative_error > 0:
            Q = Q * (1.0 + rng.normal(0.0, self.relative_error, size=Q.shape))
        if self.absolute_error > 0 and scale > 0:
            Q = Q + rng.normal(0.0, self.absolute_error * scale, size=Q.shape)
        Q = (Q + Q.T) / 2.0
        return QUBOModel(Q, offset=model.offset, name=model.name)


@dataclass(frozen=True)
class QuantizationModel:
    """Uniform coefficient quantisation to a fixed number of bits.

    Digital annealers represent coefficients with finite precision; once the
    penalty term dominates, the objective differences fall below one quantum
    and become invisible to the solver.  ``num_bits`` is the signed integer
    width used for the coefficients after scaling to the dynamic range.
    """

    num_bits: int = 16

    def __post_init__(self) -> None:
        if self.num_bits < 2:
            raise ValueError("num_bits must be at least 2")

    def quantize(self, model: QUBOModel) -> QUBOModel:
        """Return a copy of ``model`` with quantised coefficients.

        Sparse-stored models quantise their stored coefficients in CSR form
        (zeros quantise to zero anyway) — no densification.
        """
        scale = model.max_abs_coefficient()
        if model.is_sparse:
            Q = model.sparse_Q().copy()
            if scale == 0:
                return QUBOModel(Q, offset=model.offset, name=model.name)
            levels = 2 ** (self.num_bits - 1) - 1
            step = scale / levels
            Q.data = np.round(Q.data / step) * step
            return QUBOModel(Q, offset=model.offset, name=model.name)
        Q = np.array(model.Q, dtype=np.float64, copy=True)
        if scale == 0:
            return QUBOModel(Q, offset=model.offset, name=model.name)
        levels = 2 ** (self.num_bits - 1) - 1
        step = scale / levels
        Q = np.round(Q / step) * step
        return QUBOModel(Q, offset=model.offset, name=model.name)
