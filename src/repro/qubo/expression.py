"""Sparse-first QUBO expression building.

The paper's whole loop is "re-relax the same instance at many values of the
relaxation parameter ``A`` and solve" (Sec. 3: ``H_B + A * H_A``).  This
module provides the two pieces that make that loop cheap at scale:

* :class:`QUBOAccumulator` — vectorised COO triplet accumulation with
  duplicate coalescing.  Problem encoders append whole index/value arrays
  (``add_linear`` / ``add_quadratic`` / ``add_squared_linear_penalty``) instead
  of filling a dense ``n x n`` array entry by entry; :meth:`QUBOAccumulator.build`
  coalesces once through scipy's COO→CSR conversion and picks the storage
  backend, so a large sparse instance is encoded without any dense allocation.
* :class:`RelaxedEncoding` — a frozen ``(objective, penalty)`` pair (``H_B``,
  ``H_A``) that composes ``H_B + A * H_A`` on demand, storage-preserving, with
  a small per-``A`` LRU so the service materialises each relaxed model once.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.qubo.model import QUBOModel

from repro.utils.sparse import scipy_sparse as _sparse


class QUBOAccumulator:
    """Vectorised COO accumulation of QUBO coefficients.

    Terms are appended as whole arrays of ``(row, col, value)`` triplets; the
    energy contribution of a triplet is ``value * x_row * x_col`` (diagonal
    triplets are linear terms because ``x^2 = x`` for binary variables).
    Duplicate coordinates are coalesced (summed) at :meth:`build` time, so
    encoders are free to emit the same coordinate from several constraints.

    All ``add_*`` methods return ``self`` for chaining.
    """

    def __init__(self, num_variables: int) -> None:
        num_variables = int(num_variables)
        if num_variables <= 0:
            raise ValueError("num_variables must be positive")
        self._num_variables = num_variables
        self._rows: list[np.ndarray] = []
        self._cols: list[np.ndarray] = []
        self._vals: list[np.ndarray] = []
        self._offset = 0.0

    @property
    def num_variables(self) -> int:
        return self._num_variables

    @property
    def num_terms(self) -> int:
        """Number of accumulated (uncoalesced) triplets."""
        return int(sum(chunk.size for chunk in self._rows))

    @property
    def offset(self) -> float:
        return self._offset

    # ------------------------------------------------------------------ terms
    def _append(self, rows, cols, values) -> "QUBOAccumulator":
        # Always copy: the accumulator holds the chunks until build(), and a
        # caller reusing a scratch buffer between add_* calls must not be able
        # to alias previously appended terms.
        rows = np.atleast_1d(np.array(rows, dtype=np.int64)).ravel()
        cols = np.atleast_1d(np.array(cols, dtype=np.int64)).ravel()
        if rows.shape != cols.shape:
            raise ValueError(f"rows and cols must match, got {rows.shape} vs {cols.shape}")
        values = np.array(
            np.broadcast_to(np.asarray(values, dtype=np.float64), rows.shape)
        )
        if rows.size == 0:
            return self
        lo = min(int(rows.min()), int(cols.min()))
        hi = max(int(rows.max()), int(cols.max()))
        if lo < 0 or hi >= self._num_variables:
            raise ValueError(
                f"index out of range for n={self._num_variables} "
                f"(saw indices in [{lo}, {hi}])"
            )
        self._rows.append(rows)
        self._cols.append(cols)
        self._vals.append(values)
        return self

    def add_constant(self, value: float) -> "QUBOAccumulator":
        """Add a constant energy offset."""
        self._offset += float(value)
        return self

    def add_linear(self, indices, values) -> "QUBOAccumulator":
        """Add ``sum_k values[k] * x[indices[k]]`` (scalar ``values`` broadcasts)."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64)).ravel()
        return self._append(indices, indices, values)

    def add_quadratic(self, rows, cols, values) -> "QUBOAccumulator":
        """Add ``sum_k values[k] * x[rows[k]] * x[cols[k]]``.

        ``rows[k] == cols[k]`` entries fold onto the diagonal (linear terms).
        The triplet is recorded as given; the model's symmetrisation spreads it
        over ``(i, j)`` and ``(j, i)`` without changing the energy.
        """
        return self._append(rows, cols, values)

    def add_squared_linear_penalty(
        self, indices, coefficients, constant: float = 0.0
    ) -> "QUBOAccumulator":
        """Add ``(sum_k coefficients[k] * x[indices[k]] - constant)^2``.

        The expansion is fully vectorised: the quadratic part is the flattened
        outer product of the coefficient vector over the support, the linear
        part folds onto the diagonal, and ``constant**2`` goes to the offset.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64)).ravel()
        coefficients = np.broadcast_to(
            np.asarray(coefficients, dtype=np.float64), indices.shape
        )
        k = indices.size
        if k:
            rows = np.repeat(indices, k)
            cols = np.tile(indices, k)
            vals = np.repeat(coefficients, k) * np.tile(coefficients, k)
            self._append(rows, cols, vals)
            constant = float(constant)
            if constant != 0.0:
                self.add_linear(indices, -2.0 * constant * coefficients)
        return self.add_constant(float(constant) ** 2)

    # ------------------------------------------------------------------ build
    def build(
        self, offset: float = 0.0, name: str = "", storage: str = "auto"
    ) -> QUBOModel:
        """Coalesce the accumulated triplets into a :class:`QUBOModel`.

        ``storage`` selects the coefficient backend: ``"sparse"`` / ``"dense"``
        force one, ``"auto"`` keeps CSR when the model falls inside the sparse
        backend regime (:data:`~repro.qubo.model.SPARSE_MIN_VARIABLES`,
        :data:`~repro.qubo.model.SPARSE_DENSITY_THRESHOLD`) and densifies the
        small or near-dense models the solvers would densify anyway.  The
        coalescing itself always happens in sparse COO form — an ``n x n``
        array is only ever allocated for a model that ends up dense.
        """
        if storage not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown storage {storage!r}")
        total_offset = self._offset + float(offset)
        n = self._num_variables
        if self._rows:
            rows = np.concatenate(self._rows)
            cols = np.concatenate(self._cols)
            vals = np.concatenate(self._vals)
        else:
            rows = cols = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0, dtype=np.float64)
        if _sparse is None:
            if storage == "sparse":
                raise RuntimeError("scipy is required for sparse QUBO storage")
            Q = np.zeros((n, n), dtype=np.float64)
            np.add.at(Q, (rows, cols), vals)
            return QUBOModel(Q, offset=total_offset, name=name)
        coo = _sparse.coo_array((vals, (rows, cols)), shape=(n, n))
        model = QUBOModel(coo.tocsr(), offset=total_offset, name=name)
        if storage == "auto":
            storage = "sparse" if model.in_sparse_regime() else "dense"
        return model.with_storage(storage)


@dataclass(frozen=True, eq=False)
class RelaxedEncoding:
    """Frozen ``(H_B, H_A)`` pair composing ``H_B + A * H_A`` on demand.

    The objective and penalty models keep whatever storage their encoder
    chose; :meth:`relax` composes them storage-preservingly (sparse + sparse
    stays sparse) and caches the most recent relaxed models per parameter, so
    service-level batching materialises each ``(encoding, A)`` exactly once.
    """

    objective: QUBOModel
    penalty: QUBOModel
    name: str = ""
    #: Bound on the per-parameter model cache.  Relaxed models of large
    #: instances are big; tuning sweeps mostly evaluate each parameter once,
    #: so a small LRU captures the service's dedup needs without hoarding.
    max_cached_relaxations: int = 8

    _cache: "OrderedDict[float, QUBOModel]" = field(
        init=False, repr=False, compare=False, default_factory=OrderedDict
    )
    _lock: threading.Lock = field(
        init=False, repr=False, compare=False, default_factory=threading.Lock
    )
    _fingerprint_cache: list = field(
        init=False, repr=False, compare=False, default_factory=list
    )

    def __post_init__(self) -> None:
        if self.objective.num_variables != self.penalty.num_variables:
            raise ValueError(
                "objective and penalty are defined over different numbers of "
                f"variables ({self.objective.num_variables} vs "
                f"{self.penalty.num_variables})"
            )
        if self.max_cached_relaxations <= 0:
            raise ValueError("max_cached_relaxations must be positive")

    @property
    def num_variables(self) -> int:
        return int(self.objective.num_variables)

    # ------------------------------------------------------------ composition
    def relax(self, relaxation_parameter: float) -> QUBOModel:
        """The relaxed model ``H_B + A * H_A`` for ``A = relaxation_parameter``.

        Repeated calls with the same parameter return the cached model (LRU of
        :attr:`max_cached_relaxations`); composition preserves storage, so a
        sparse encoding never densifies here.
        """
        from repro.utils.validation import check_positive

        A = check_positive(relaxation_parameter, "relaxation_parameter")
        with self._lock:
            cached = self._cache.get(A)
            if cached is not None:
                self._cache.move_to_end(A)
                return cached
        # Compose outside the lock: concurrent workers relaxing *different*
        # parameters of the same encoding must not serialise on each other's
        # O(nnz..n^2) compositions.  A racing duplicate composition of the
        # same parameter is benign (models are immutable) — first store wins.
        combined = self.objective + self.penalty.scaled(A)
        combined.name = self.name or self.objective.name or "relaxed"
        with self._lock:
            existing = self._cache.get(A)
            if existing is not None:
                self._cache.move_to_end(A)
                return existing
            self._cache[A] = combined
            while len(self._cache) > self.max_cached_relaxations:
                self._cache.popitem(last=False)
        return combined

    def fingerprint(self) -> str:
        """Stable hash of the ``(objective, penalty)`` pair.

        Together with the relaxation parameter this identifies the relaxed
        model *without materialising it* — the service keys request groups on
        ``(encoding fingerprint, A)`` and builds the model lazily in a worker.
        """
        if not self._fingerprint_cache:
            digest = hashlib.sha256()
            digest.update(self.objective.fingerprint().encode("ascii"))
            digest.update(self.penalty.fingerprint().encode("ascii"))
            self._fingerprint_cache.append(digest.hexdigest()[:16])
        return self._fingerprint_cache[0]

    # --------------------------------------------------------------- energies
    def objective_energy(self, x: np.ndarray) -> float:
        """Original objective value of an assignment (independent of ``A``)."""
        return self.objective.energy(x)

    def penalty_energy(self, x: np.ndarray) -> float:
        """Constraint-violation energy of an assignment (independent of ``A``)."""
        return self.penalty.energy(x)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Whether an assignment satisfies the constraints (penalty energy ~ 0)."""
        return self.penalty_energy(x) <= tol
