"""Containers for batches of solver reads (samples).

A stochastic QUBO solver returns a *batch* of candidate assignments per call.
:class:`SampleSet` stores the assignments together with their QUBO energies and
provides the aggregate statistics QROSS learns from: probability of feasibility,
mean / standard deviation of the feasible objective energies, and the batch
minimum fitness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SampleRecord:
    """One solver read: a binary assignment, its QUBO energy and occurrence count."""

    assignment: np.ndarray
    energy: float
    num_occurrences: int = 1


class SampleSet:
    """Batch of solver reads with convenience statistics.

    Parameters
    ----------
    assignments:
        Binary matrix of shape ``(batch, n)``.
    energies:
        QUBO energies of each row, shape ``(batch,)``.
    num_occurrences:
        Optional per-row multiplicities (defaults to 1).
    solver_name:
        Label of the solver that produced the batch.
    info:
        Free-form metadata (wall-clock time, sweeps, ...).
    """

    def __init__(
        self,
        assignments: np.ndarray,
        energies: np.ndarray,
        num_occurrences: Optional[np.ndarray] = None,
        solver_name: str = "",
        info: Optional[dict] = None,
    ) -> None:
        assignments = np.asarray(assignments, dtype=np.int8)
        energies = np.asarray(energies, dtype=np.float64)
        if assignments.ndim != 2:
            raise ValueError(f"assignments must be 2-D, got shape {assignments.shape}")
        if energies.shape != (assignments.shape[0],):
            raise ValueError(
                f"energies shape {energies.shape} does not match batch size {assignments.shape[0]}"
            )
        if num_occurrences is None:
            num_occurrences = np.ones(assignments.shape[0], dtype=np.int64)
        num_occurrences = np.asarray(num_occurrences, dtype=np.int64)
        if num_occurrences.shape != (assignments.shape[0],):
            raise ValueError("num_occurrences must have one entry per sample")
        if num_occurrences.size and num_occurrences.min() < 1:
            # Zero or negative multiplicities poison every occurrence-weighted
            # statistic (division by zero / NaN means), so reject them here.
            raise ValueError("num_occurrences entries must all be >= 1")
        order = np.argsort(energies, kind="stable")
        self._assignments = assignments[order]
        self._energies = energies[order]
        self._num_occurrences = num_occurrences[order]
        self.solver_name = solver_name
        self.info = dict(info or {})

    # ----------------------------------------------------------------- access
    @property
    def assignments(self) -> np.ndarray:
        return self._assignments

    @property
    def energies(self) -> np.ndarray:
        return self._energies

    @property
    def num_occurrences(self) -> np.ndarray:
        return self._num_occurrences

    @property
    def num_samples(self) -> int:
        return int(self._assignments.shape[0])

    @property
    def num_variables(self) -> int:
        return int(self._assignments.shape[1])

    def __len__(self) -> int:
        return self.num_samples

    def __iter__(self) -> Iterator[SampleRecord]:
        for row, energy, occ in zip(self._assignments, self._energies, self._num_occurrences):
            yield SampleRecord(assignment=row.copy(), energy=float(energy), num_occurrences=int(occ))

    @property
    def best(self) -> SampleRecord:
        """Lowest-energy read in the batch."""
        if self.num_samples == 0:
            raise ValueError("sample set is empty")
        return SampleRecord(
            assignment=self._assignments[0].copy(),
            energy=float(self._energies[0]),
            num_occurrences=int(self._num_occurrences[0]),
        )

    # ------------------------------------------------------------- statistics
    def feasibility_mask(self, is_feasible: Callable[[np.ndarray], bool]) -> np.ndarray:
        """Boolean mask of reads accepted by ``is_feasible``."""
        return np.array([bool(is_feasible(row)) for row in self._assignments], dtype=bool)

    def probability_of_feasibility(self, is_feasible: Callable[[np.ndarray], bool]) -> float:
        """Fraction of reads that are feasible (paper Eq. 1), weighted by occurrences."""
        if self.num_samples == 0:
            return 0.0
        mask = self.feasibility_mask(is_feasible)
        total = float(self._num_occurrences.sum())
        return float(self._num_occurrences[mask].sum()) / total

    def feasible_fitnesses(
        self,
        is_feasible: Callable[[np.ndarray], bool],
        fitness: Callable[[np.ndarray], float],
    ) -> np.ndarray:
        """Original-problem objective values of the feasible reads."""
        mask = self.feasibility_mask(is_feasible)
        return np.array([float(fitness(row)) for row in self._assignments[mask]], dtype=np.float64)

    def energy_statistics(self) -> tuple[float, float]:
        """Occurrence-weighted ``(mean, std)`` of the batch energies."""
        if self.num_samples == 0:
            raise ValueError("sample set is empty")
        weights = self._num_occurrences.astype(np.float64)
        mean = float(np.average(self._energies, weights=weights))
        var = float(np.average((self._energies - mean) ** 2, weights=weights))
        return mean, float(np.sqrt(var))

    # ------------------------------------------------------------------ tools
    def truncated(self, max_samples: int) -> "SampleSet":
        """Return a new set keeping only the ``max_samples`` lowest-energy reads."""
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        k = min(max_samples, self.num_samples)
        return SampleSet(
            self._assignments[:k],
            self._energies[:k],
            self._num_occurrences[:k],
            solver_name=self.solver_name,
            info=dict(self.info),
        )

    def to_wire(self) -> tuple[dict, tuple[np.ndarray, ...]]:
        """Header + raw numpy buffers for the cross-process wire format.

        The three arrays ship verbatim (the set is already energy-sorted, and
        re-sorting on reconstruction is stable, so round-trips are
        byte-identical).  ``info`` travels in the JSON header — values must be
        JSON-representable after the wire module's scalar coercion.
        """
        header = {"solver_name": self.solver_name, "info": self.info}
        return header, (self._assignments, self._energies, self._num_occurrences)

    @classmethod
    def from_wire(cls, header: dict, buffers: Sequence[np.ndarray]) -> "SampleSet":
        """Rebuild a sample set from :meth:`to_wire` output."""
        assignments, energies, num_occurrences = buffers
        return cls(
            assignments,
            energies,
            num_occurrences,
            solver_name=str(header.get("solver_name", "")),
            info=dict(header.get("info") or {}),
        )

    @classmethod
    def concatenate(cls, sample_sets: Sequence["SampleSet"]) -> "SampleSet":
        """Merge several batches (from repeated solver calls) into one.

        Metadata is merged rather than dropped: wall-clock times accumulate
        (the merged batch cost the sum of its parts) while any other key keeps
        the first set's value.
        """
        sets = [s for s in sample_sets if s.num_samples > 0]
        if not sets:
            raise ValueError("nothing to concatenate")
        n = sets[0].num_variables
        if any(s.num_variables != n for s in sets):
            raise ValueError("sample sets must share the same number of variables")
        info: dict = {}
        for s in sets:
            for key, value in s.info.items():
                if key == "wall_time_s":
                    info[key] = info.get(key, 0.0) + float(value)
                elif key not in info:
                    info[key] = value
        return cls(
            np.concatenate([s.assignments for s in sets], axis=0),
            np.concatenate([s.energies for s in sets], axis=0),
            np.concatenate([s.num_occurrences for s in sets], axis=0),
            solver_name=sets[0].solver_name,
            info=info,
        )
