"""CuPy array backend (imported lazily; requires ``cupy`` installed).

CuPy's namespace is numpy-compatible, so ``xp`` is the ``cupy`` module
itself; only the host/device transfers and the CSR product need adapting.
Results fall under the tolerance-based parity tier (GPU reduction orders
differ from host numpy) while the host-numpy random stream keeps seeded
trajectories backend-invariant up to floating point.
"""

from __future__ import annotations

import numpy as np

from repro.compute.backend import ArrayBackend, ArrayBackendUnavailable

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy
    import cupyx.scipy.sparse as cupy_sparse
except ImportError as _exc:  # pragma: no cover
    cupy = None
    cupy_sparse = None
    _IMPORT_ERROR = _exc
else:  # pragma: no cover
    _IMPORT_ERROR = None


class CupyArrayBackend(ArrayBackend):  # pragma: no cover - requires cupy
    """Engine backend computing on the current CUDA device via CuPy."""

    kind = "cupy"

    def __init__(self, dtype: str = "float64") -> None:
        if cupy is None:
            raise ArrayBackendUnavailable(
                f"the cupy array backend requires cupy: {_IMPORT_ERROR}"
            )
        super().__init__(dtype)
        self._dtype = cupy.dtype(self.dtype_name)
        try:
            cupy.zeros(1)  # fail fast when no CUDA device is usable
        except Exception as exc:
            raise ArrayBackendUnavailable(f"cupy cannot allocate on a device: {exc}")

    @property
    def xp(self):
        return cupy

    @property
    def dtype(self):
        return self._dtype

    @property
    def device(self):
        return f"cuda:{cupy.cuda.runtime.getDevice()}"

    def asarray(self, values, dtype=None):
        return cupy.asarray(values, dtype=self._dtype if dtype is None else dtype)

    def asindex(self, values):
        return cupy.asarray(values, dtype=cupy.int64)

    def to_numpy(self, values):
        if isinstance(values, cupy.ndarray):
            return cupy.asnumpy(values)
        return np.asarray(values)

    def copy(self, values):
        return values.copy()

    def log_guarded(self, values):
        return cupy.log(values)

    def synchronize(self) -> None:
        cupy.cuda.get_current_stream().synchronize()

    def prepare_csr(self, data, indices, indptr, shape):
        return cupy_sparse.csr_matrix(
            (
                cupy.asarray(data, dtype=self._dtype),
                cupy.asarray(indices, dtype=cupy.int32),
                cupy.asarray(indptr, dtype=cupy.int32),
            ),
            shape=shape,
        )

    def csr_right_multiply(self, X, csr):
        # Q is symmetric by the model contract: X @ Q == (Q @ X^T)^T.
        return (csr @ X.T).T
