"""Torch array backend (imported lazily; requires ``torch`` installed).

Torch's namespace is *almost* numpy-compatible for the operations the engine
kernels use; :class:`_TorchNamespace` shims the differences (``dim`` vs
``axis``, missing ``argpartition``/``put_along_axis``) so the kernels can use
one calling convention everywhere.  Results on this backend fall under the
tolerance-based parity tier — reduction orders and fused kernels differ from
numpy — while the random stream stays host-numpy and therefore identical.

Device selection: ``QROSS_TORCH_DEVICE`` if set, else CUDA when available,
else CPU.
"""

from __future__ import annotations

import os

import numpy as np

from repro.compute.backend import ArrayBackend, ArrayBackendUnavailable

try:  # pragma: no cover - exercised only where torch is installed
    import torch
except ImportError as _exc:  # pragma: no cover
    torch = None
    _IMPORT_ERROR = _exc
else:  # pragma: no cover
    _IMPORT_ERROR = None


class _TorchNamespace:  # pragma: no cover - requires torch
    """Numpy-signature shim over the torch namespace for the engine kernels."""

    inf = float("inf")

    def __init__(self, device, dtype):
        self._device = device
        self._dtype = dtype
        self.bool = torch.bool
        self.int64 = torch.int64
        self.float32 = torch.float32
        self.float64 = torch.float64

    def asarray(self, values, dtype=None):
        return torch.as_tensor(values, dtype=dtype, device=self._device)

    def zeros(self, shape, dtype=None):
        return torch.zeros(shape, dtype=dtype or self._dtype, device=self._device)

    def zeros_like(self, values, dtype=None):
        return torch.zeros_like(values, dtype=dtype)

    def full(self, shape, fill_value, dtype=None):
        return torch.full(shape, fill_value, dtype=dtype, device=self._device)

    def arange(self, *args, dtype=None):
        return torch.arange(*args, dtype=dtype, device=self._device)

    def exp(self, values):
        return torch.exp(values)

    def log(self, values):
        return torch.log(values)

    def clip(self, values, low=None, high=None):
        return torch.clamp(values, min=low, max=high)

    def where(self, condition, a, b):
        return torch.where(condition, a, b)

    def sum(self, values, axis=None):
        return torch.sum(values, dim=axis) if axis is not None else torch.sum(values)

    def any(self, values, axis=None):
        return torch.any(values, dim=axis) if axis is not None else torch.any(values)

    def count_nonzero(self, values):
        return torch.count_nonzero(values)

    def argmax(self, values, axis=None):
        return torch.argmax(values, dim=axis)

    def argmin(self, values, axis=None):
        return torch.argmin(values, dim=axis)

    def argpartition(self, values, kth, axis=-1):
        # The engine only consumes the leading ``kth + 1`` entries (top-k
        # selection); torch.topk returns them directly.
        return torch.topk(-values, kth + 1, dim=axis, largest=True).indices

    def put_along_axis(self, values, indices, fill, axis):
        values.scatter_(axis, indices, bool(fill) if values.dtype == torch.bool else fill)


class TorchArrayBackend(ArrayBackend):  # pragma: no cover - requires torch
    """Engine backend computing on torch tensors (CPU or CUDA)."""

    kind = "torch"

    def __init__(self, dtype: str = "float64") -> None:
        if torch is None:
            raise ArrayBackendUnavailable(
                f"the torch array backend requires torch: {_IMPORT_ERROR}"
            )
        super().__init__(dtype)
        name = os.environ.get("QROSS_TORCH_DEVICE")
        if name is None:
            name = "cuda" if torch.cuda.is_available() else "cpu"
        self._device = torch.device(name)
        self._dtype = torch.float64 if self.dtype_name == "float64" else torch.float32
        self._xp = _TorchNamespace(self._device, self._dtype)

    @property
    def xp(self):
        return self._xp

    @property
    def dtype(self):
        return self._dtype

    @property
    def device(self):
        return self._device

    def asarray(self, values, dtype=None):
        return torch.as_tensor(
            values, dtype=self._dtype if dtype is None else dtype, device=self._device
        )

    def asindex(self, values):
        return torch.as_tensor(values, dtype=torch.int64, device=self._device)

    def to_numpy(self, values):
        if isinstance(values, torch.Tensor):
            return values.detach().cpu().numpy()
        return np.asarray(values)

    def copy(self, values):
        return values.clone()

    def synchronize(self) -> None:
        if self._device.type == "cuda":
            torch.cuda.synchronize(self._device)

    def prepare_csr(self, data, indices, indptr, shape):
        return torch.sparse_csr_tensor(
            torch.as_tensor(indptr, dtype=torch.int64, device=self._device),
            torch.as_tensor(indices, dtype=torch.int64, device=self._device),
            torch.as_tensor(np.asarray(data), dtype=self._dtype, device=self._device),
            size=shape,
        )

    def csr_right_multiply(self, X, csr):
        # Q is symmetric by the model contract, so X @ Q == (Q @ X^T)^T and
        # torch's sparse-dense matmul covers it without a CSC dual.
        return (csr @ X.T).T
