"""Backend-resident coefficient operators for the annealing engine.

The model-level operators (:class:`repro.qubo.model.DenseOperator`,
:class:`~repro.qubo.model.SparseOperator`) hold host float64/float32 numpy
data.  When a solver runs on a non-reference :class:`~repro.compute.backend.
ArrayBackend` (another dtype, another device), the operator's ``to_backend``
hook wraps the same coefficients in one of the classes below, which keep the
matrix data on the backend's device in the engine dtype and execute
``right_multiply`` / ``rows`` / ``block_product`` there — device→host
transfer happens only at solver read-out, never inside a sweep.

These wrappers depend only on numpy and the :class:`ArrayBackend` protocol
(never on :mod:`repro.qubo`), so the import points one way:
``qubo.model → compute.operators → compute.backend``.
"""

from __future__ import annotations

import numpy as np


class BackendDenseOperator:
    """Dense coefficient kernel living on an :class:`ArrayBackend`.

    ``diag`` stays a host float64 array (it parameterises host-side setup like
    schedules); the engine converts it to the backend dtype when it builds its
    state.
    """

    kind = "dense"

    def __init__(self, Q: np.ndarray, diag: np.ndarray, ab) -> None:
        self.ab = ab
        self._Q = ab.asarray(Q)
        self.diag = np.ascontiguousarray(diag, dtype=np.float64)

    @property
    def num_variables(self) -> int:
        return int(self._Q.shape[0])

    def right_multiply(self, X):
        """``X @ Q`` for a batch of device states — initialises local fields."""
        return X @ self._Q

    def rows(self, indices):
        """Gather of the requested rows, shape ``(len(indices), n)``."""
        return self._Q[self.ab.asindex(indices)]

    def row(self, index: int):
        """Single row (a view on backends that support views)."""
        return self._Q[index]

    def block_product(self, dX_block, block):
        """``dX_block @ Q[block, :]`` — the local-field update of a block flip."""
        return dX_block @ self._Q[self.ab.asindex(block)]


class BackendSparseOperator:
    """CSR coefficient kernel living on an :class:`ArrayBackend`.

    The CSR structure (``indptr``/``indices``) is kept on the host — row
    gathers need it for bookkeeping only — while the coefficient data and a
    backend-prepared CSR handle live on the device.  Row gathers are fully
    vectorised: one host index computation, one device scatter.
    """

    kind = "sparse"

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape,
        diag: np.ndarray,
        ab,
    ) -> None:
        self.ab = ab
        self._shape = (int(shape[0]), int(shape[1]))
        self._host_indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self._host_indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._data = ab.asarray(data)
        self._csr = ab.prepare_csr(data, self._host_indices, self._host_indptr, self._shape)
        self.diag = np.ascontiguousarray(diag, dtype=np.float64)

    @property
    def num_variables(self) -> int:
        return self._shape[0]

    def right_multiply(self, X):
        return self.ab.csr_right_multiply(X, self._csr)

    def _gather(self, idx: np.ndarray):
        """Dense device rows for host row indices ``idx`` (vectorised)."""
        starts = self._host_indptr[idx]
        counts = self._host_indptr[idx + 1] - starts
        total = int(counts.sum())
        ab = self.ab
        out = ab.xp.zeros((idx.size, self.num_variables), dtype=ab.dtype)
        if total:
            offsets = np.cumsum(counts) - counts
            positions = np.repeat(starts - offsets, counts) + np.arange(total)
            row_ids = np.repeat(np.arange(idx.size), counts)
            col_ids = self._host_indices[positions]
            out[ab.asindex(row_ids), ab.asindex(col_ids)] = self._data[
                ab.asindex(positions)
            ]
        return out

    def _host_idx(self, indices) -> np.ndarray:
        """Indices as host int64 (row gathers do their bookkeeping on host)."""
        return np.atleast_1d(np.asarray(self.ab.to_numpy(indices), dtype=np.int64))

    def rows(self, indices):
        return self._gather(self._host_idx(indices))

    def row(self, index: int):
        return self._gather(np.asarray([index], dtype=np.int64))[0]

    def block_product(self, dX_block, block):
        return dX_block @ self._gather(self._host_idx(block))
