"""Array-API compute layer: one kernel source, pluggable numpy/torch/CuPy.

See :mod:`repro.compute.backend` for the :class:`ArrayBackend` contract and
selection precedence (solver config > ``QROSS_ARRAY_BACKEND`` /
``QROSS_ENGINE_DTYPE`` environment knobs > numpy/float64 reference).
"""

from repro.compute.backend import (
    BACKEND_ENV,
    DTYPE_ENV,
    SUPPORTED_DTYPES,
    ArrayBackend,
    ArrayBackendUnavailable,
    NumpyArrayBackend,
    available_array_backends,
    get_array_backend,
    register_array_backend,
    registered_array_backends,
    resolve_array_backend,
    validate_engine_dtype,
)
from repro.compute.operators import BackendDenseOperator, BackendSparseOperator

__all__ = [
    "BACKEND_ENV",
    "DTYPE_ENV",
    "SUPPORTED_DTYPES",
    "ArrayBackend",
    "ArrayBackendUnavailable",
    "BackendDenseOperator",
    "BackendSparseOperator",
    "NumpyArrayBackend",
    "available_array_backends",
    "get_array_backend",
    "register_array_backend",
    "registered_array_backends",
    "resolve_array_backend",
    "validate_engine_dtype",
]
