"""Pluggable array-compute backends for the batched solver engine.

Every replica-batched solver in this package (SA, adaptive-block SA, DA,
multi-flip DA, PT, tabu and, through tabu, qbsolv) runs its hot kernels
through one :class:`ArrayBackend` handle: a *namespace + device + dtype*
bundle in the style of ``array_api_compat`` namespace dispatch.  The engine
kernels never call ``np.*`` directly — they call ``ab.xp.*`` and the handful
of :class:`ArrayBackend` helper methods — so swapping numpy for CuPy or torch
is a constructor argument, not a rewrite.

Three backends are known out of the box:

* ``numpy`` — the reference backend.  With ``dtype="float64"`` it *is* the
  historical engine: ``xp`` is the ``numpy`` module itself and every
  conversion helper is a no-op ``asarray``, so seeded solves are
  byte-identical to the pre-refactor code (the determinism matrix pins this).
  ``dtype="float32"`` gives the single-precision end-to-end path on the same
  kernels.
* ``torch`` / ``cupy`` — imported lazily and only usable when the library is
  installed; :func:`available_array_backends` lists what this process can
  actually construct.  Their results fall under the tolerance-based parity
  tier, not byte-identity.

Selection precedence, highest first:

1. an explicit solver-config option (``sa?array_backend=torch&dtype=float32``),
2. the ``QROSS_ARRAY_BACKEND`` / ``QROSS_ENGINE_DTYPE`` environment variables,
3. the defaults ``numpy`` / ``float64``.

Random number generation deliberately stays on the host numpy
``Generator``: every backend consumes the *same* host-drawn uniforms and
permutations (transferred via :meth:`ArrayBackend.from_numpy`), so the random
stream — and therefore the seeded trajectory up to floating-point effects —
is backend-invariant, and the numpy/float64 path consumes it bit-for-bit as
before.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: Environment variable selecting the engine's array backend by name.
BACKEND_ENV = "QROSS_ARRAY_BACKEND"
#: Environment variable selecting the engine's floating-point dtype.
DTYPE_ENV = "QROSS_ENGINE_DTYPE"

#: Engine float dtypes a backend must support.
SUPPORTED_DTYPES = ("float64", "float32")

DEFAULT_BACKEND = "numpy"
DEFAULT_DTYPE = "float64"


class ArrayBackendUnavailable(RuntimeError):
    """The requested backend's underlying library cannot be imported."""


def validate_engine_dtype(dtype: Optional[str]) -> Optional[str]:
    """Validate a dtype knob value (``None`` means "inherit")."""
    if dtype is None:
        return None
    key = str(dtype).strip().lower()
    if key not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported engine dtype {dtype!r}; supported: {SUPPORTED_DTYPES}"
        )
    return key


class ArrayBackend:
    """Namespace + device + dtype bundle the engine kernels compute through.

    Subclasses provide the array namespace ``xp`` (numpy-compatible call
    signatures for the operations the kernels use), the device the arrays
    live on, and the conversion helpers that move data across the host/device
    boundary.  The contract the engine relies on:

    * all state arrays (``X``/``H``/energies) are created through
      :meth:`asarray` / :meth:`from_numpy` and therefore live on ``device``
      in ``dtype``;
    * host randomness enters exclusively through :meth:`from_numpy`;
    * results leave exclusively through :meth:`to_numpy` — device→host
      transfer happens only at read-out.
    """

    #: Backend family name ("numpy", "torch", "cupy", ...).
    kind = "abstract"

    def __init__(self, dtype: str = DEFAULT_DTYPE) -> None:
        self.dtype_name = validate_engine_dtype(dtype) or DEFAULT_DTYPE

    # ------------------------------------------------------------- identity
    @property
    def xp(self):
        """The array namespace (numpy-compatible signatures)."""
        raise NotImplementedError

    @property
    def dtype(self):
        """The backend-native dtype object for engine floats."""
        raise NotImplementedError

    @property
    def device(self):
        """Device token the arrays live on (``None`` = host)."""
        return None

    @property
    def is_reference(self) -> bool:
        """Whether this is the byte-identity reference (numpy float64)."""
        return self.kind == "numpy" and self.dtype_name == "float64"

    def cache_key(self) -> Tuple[str, str, str]:
        """Hashable identity used to memoise per-backend adapted operators."""
        return (self.kind, self.dtype_name, str(self.device))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(kind={self.kind!r}, dtype={self.dtype_name!r}, "
            f"device={self.device!r})"
        )

    # ---------------------------------------------------------- conversions
    def asarray(self, values, dtype=None):
        """Device array in the engine dtype (or an explicit ``dtype``)."""
        raise NotImplementedError

    def asindex(self, values):
        """Device integer array usable for advanced indexing."""
        raise NotImplementedError

    def from_numpy(self, values: np.ndarray):
        """Host array → device array in the engine dtype.

        On the reference backend this is a plain no-copy ``asarray`` so host
        randomness reaches the kernels bit-for-bit.
        """
        return self.asarray(values)

    def to_numpy(self, values) -> np.ndarray:
        """Device array → host numpy array (the read-out transfer)."""
        raise NotImplementedError

    def copy(self, values):
        """An independent copy of a device array."""
        raise NotImplementedError

    # ----------------------------------------------------------- operations
    def log_guarded(self, values):
        """Elementwise log with ``log(0) -> -inf`` silenced (swap criterion)."""
        return self.xp.log(values)

    def synchronize(self) -> None:
        """Block until queued device work completes (benchmark timing aid)."""

    # ------------------------------------------------------------ operators
    def adapt_operator(self, operator):
        """The coefficient operator to use for this backend.

        The reference backend returns the operator unchanged (preserving the
        historical float64 arrays and their model-level cache); every other
        backend/dtype goes through the operator's ``to_backend`` hook, which
        memoises per :meth:`cache_key`.
        """
        if self.is_reference:
            return operator
        to_backend = getattr(operator, "to_backend", None)
        if to_backend is None:
            raise TypeError(
                f"operator {type(operator).__name__} does not support array "
                f"backends (missing to_backend); run it on the reference "
                f"numpy/float64 backend"
            )
        return to_backend(self)

    # ------------------------------------------------------------ sparse mm
    def prepare_csr(self, data, indices, indptr, shape):
        """Backend-resident CSR handle for :meth:`csr_right_multiply`."""
        raise NotImplementedError

    def csr_right_multiply(self, X, csr):
        """``X @ Q`` for a CSR handle from :meth:`prepare_csr` (symmetric Q)."""
        raise NotImplementedError


class NumpyArrayBackend(ArrayBackend):
    """The reference backend: host numpy, float64 or float32."""

    kind = "numpy"

    def __init__(self, dtype: str = DEFAULT_DTYPE) -> None:
        super().__init__(dtype)
        self._dtype = np.dtype(self.dtype_name)

    @property
    def xp(self):
        return np

    @property
    def dtype(self):
        return self._dtype

    def asarray(self, values, dtype=None):
        return np.asarray(values, dtype=self._dtype if dtype is None else dtype)

    def asindex(self, values):
        return np.asarray(values, dtype=np.intp)

    def to_numpy(self, values) -> np.ndarray:
        return np.asarray(values)

    def copy(self, values):
        return np.array(values, copy=True)

    def log_guarded(self, values):
        with np.errstate(divide="ignore"):
            return np.log(values)

    def prepare_csr(self, data, indices, indptr, shape):
        from repro.utils.sparse import scipy_sparse as _sparse

        if _sparse is None:  # pragma: no cover - scipy is a hard test dep
            raise RuntimeError("scipy is required for the CSR operator")
        return _sparse.csr_array(
            (
                np.asarray(data, dtype=self._dtype),
                np.asarray(indices),
                np.asarray(indptr),
            ),
            shape=shape,
        )

    def csr_right_multiply(self, X, csr):
        return np.asarray(X @ csr, dtype=self._dtype)


# --------------------------------------------------------------------- registry
_REGISTRY_LOCK = threading.Lock()
_FACTORIES: Dict[str, Callable[[str], ArrayBackend]] = {}
_INSTANCES: Dict[Tuple[str, str], ArrayBackend] = {}


def register_array_backend(
    name: str, factory: Callable[[str], ArrayBackend], replace: bool = False
) -> None:
    """Register ``factory(dtype) -> ArrayBackend`` under ``name``.

    A factory whose library is missing should raise
    :class:`ArrayBackendUnavailable` when *called* — registration itself must
    stay import-free so merely listing backends never drags in torch/CuPy.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    with _REGISTRY_LOCK:
        if key in _FACTORIES and not replace:
            raise ValueError(f"array backend {key!r} is already registered")
        _FACTORIES[key] = factory
        for cached in [k for k in _INSTANCES if k[0] == key]:
            del _INSTANCES[cached]


def _torch_factory(dtype: str) -> ArrayBackend:
    from repro.compute._torch import TorchArrayBackend

    return TorchArrayBackend(dtype)


def _cupy_factory(dtype: str) -> ArrayBackend:
    from repro.compute._cupy import CupyArrayBackend

    return CupyArrayBackend(dtype)


_FACTORIES["numpy"] = NumpyArrayBackend
_FACTORIES["torch"] = _torch_factory
_FACTORIES["cupy"] = _cupy_factory


def registered_array_backends() -> Tuple[str, ...]:
    """Every registered backend name (importable or not), sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_FACTORIES))


def available_array_backends() -> Tuple[str, ...]:
    """Registered backends whose library actually imports in this process.

    The probe constructs (and caches) a default-dtype instance per backend,
    so availability reflects reality — a registered-but-uninstalled torch
    does not appear.  Registry-driven test matrices iterate this, which is
    how future backends auto-enroll in the parity tier.
    """
    names = []
    for name in registered_array_backends():
        try:
            get_array_backend(name)
        except ArrayBackendUnavailable:
            continue
        names.append(name)
    return tuple(names)


def get_array_backend(
    name: str = DEFAULT_BACKEND, dtype: str = DEFAULT_DTYPE
) -> ArrayBackend:
    """The shared :class:`ArrayBackend` instance for ``(name, dtype)``.

    Instances are cached process-wide: adapted operators memoise per backend
    instance, so repeated solver calls must resolve to the same object.
    Raises :class:`ArrayBackendUnavailable` when the backend's library is not
    installed and ``ValueError`` for names nothing registered.
    """
    key = name.strip().lower()
    dtype = validate_engine_dtype(dtype) or DEFAULT_DTYPE
    with _REGISTRY_LOCK:
        factory = _FACTORIES.get(key)
    if factory is None:
        raise ValueError(
            f"unknown array backend {name!r}; registered backends: "
            f"{', '.join(registered_array_backends())}"
        )
    cache_key = (key, dtype)
    with _REGISTRY_LOCK:
        instance = _INSTANCES.get(cache_key)
    if instance is not None:
        return instance
    instance = factory(dtype)
    with _REGISTRY_LOCK:
        return _INSTANCES.setdefault(cache_key, instance)


def resolve_array_backend(
    backend: "str | ArrayBackend | None" = None, dtype: Optional[str] = None
) -> ArrayBackend:
    """Resolve the backend the engine should compute on.

    ``backend`` may be an :class:`ArrayBackend` instance (returned as-is, or
    re-fetched with ``dtype`` applied when one is given), a registered name,
    or ``None`` — in which case the ``QROSS_ARRAY_BACKEND`` /
    ``QROSS_ENGINE_DTYPE`` environment knobs apply, falling back to the
    numpy/float64 reference.
    """
    if isinstance(backend, ArrayBackend):
        if dtype is None or validate_engine_dtype(dtype) == backend.dtype_name:
            return backend
        return get_array_backend(backend.kind, dtype)
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if dtype is None:
        dtype = os.environ.get(DTYPE_ENV) or DEFAULT_DTYPE
    return get_array_backend(backend, dtype)
