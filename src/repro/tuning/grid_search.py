"""Grid-search baseline: pre-computed uniformly spaced parameter values."""

from __future__ import annotations

import numpy as np

from repro.tuning.base import ParameterBounds, ParameterTuner, TrialHistory
from repro.utils.rng import RngLike


class GridSearchTuner(ParameterTuner):
    """Proposes evenly spaced parameters; cycles with jitter once exhausted."""

    name = "Grid"

    def __init__(self, bounds: ParameterBounds, num_points: int = 20, rng: RngLike = None) -> None:
        super().__init__(bounds, rng)
        if num_points < 2:
            raise ValueError("num_points must be at least 2")
        self._grid = np.linspace(bounds.low, bounds.high, num_points)

    def suggest(self, history: TrialHistory) -> float:
        index = len(history)
        if index < self._grid.size:
            return float(self._grid[index])
        jitter = self.rng.normal(0.0, self.bounds.span / (10 * self._grid.size))
        return self.bounds.clip(float(self._grid[index % self._grid.size] + jitter))
