"""Tree-structured Parzen Estimator tuner (Bergstra et al. 2011), from scratch.

TPE models ``p(parameter | good outcome)`` and ``p(parameter | bad outcome)``
with kernel density estimates built from the trial history, then proposes the
candidate that maximises the ratio ``l(x) / g(x)`` — equivalent to maximising
expected improvement under the TPE assumptions.  This is the same family of
estimator behind Hyperopt/Optuna, which the paper uses as its "TPE" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tuning.base import ParameterBounds, ParameterTuner, TrialHistory
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class TPEConfig:
    """Configuration of :class:`TPETuner`.

    Parameters
    ----------
    num_startup_trials:
        Trials drawn uniformly at random before the Parzen model kicks in.
    gamma:
        Fraction of the history regarded as "good" outcomes.
    num_candidates:
        Candidates sampled from the good-density per suggestion.
    bandwidth_factor:
        Kernel bandwidth as a fraction of the parameter range.
    """

    num_startup_trials: int = 5
    gamma: float = 0.25
    num_candidates: int = 48
    bandwidth_factor: float = 0.08

    def __post_init__(self) -> None:
        if self.num_startup_trials < 1:
            raise ValueError("num_startup_trials must be at least 1")
        if not (0.0 < self.gamma < 1.0):
            raise ValueError("gamma must lie in (0, 1)")
        if self.num_candidates < 1:
            raise ValueError("num_candidates must be at least 1")
        if self.bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")


class TPETuner(ParameterTuner):
    """One-dimensional TPE over the relaxation parameter."""

    name = "TPE"

    def __init__(
        self,
        bounds: ParameterBounds,
        config: TPEConfig | None = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(bounds, rng)
        self.config = config or TPEConfig()

    # ------------------------------------------------------------------ TPE
    def suggest(self, history: TrialHistory) -> float:
        if len(history) < self.config.num_startup_trials:
            return float(self.bounds.uniform(self.rng))

        parameters = history.parameters
        scores = history.scores()
        num_good = max(1, int(np.ceil(self.config.gamma * len(history))))
        order = np.argsort(scores, kind="stable")
        good = parameters[order[:num_good]]
        bad = parameters[order[num_good:]]
        if bad.size == 0:
            bad = parameters

        bandwidth = self.config.bandwidth_factor * self.bounds.span
        candidates = self._sample_from_kde(good, bandwidth, self.config.num_candidates)
        good_density = self._kde_density(candidates, good, bandwidth)
        bad_density = self._kde_density(candidates, bad, bandwidth)
        ratio = good_density / np.maximum(bad_density, 1e-12)
        return float(candidates[int(np.argmax(ratio))])

    def _sample_from_kde(self, centres: np.ndarray, bandwidth: float, count: int) -> np.ndarray:
        """Draw candidates from the good-outcome Parzen mixture (plus a uniform share)."""
        num_uniform = max(1, count // 4)
        num_kde = count - num_uniform
        chosen = self.rng.choice(centres, size=num_kde, replace=True)
        kde_samples = chosen + self.rng.normal(0.0, bandwidth, size=num_kde)
        uniform_samples = self.bounds.uniform(self.rng, size=num_uniform)
        samples = np.concatenate([np.atleast_1d(kde_samples), np.atleast_1d(uniform_samples)])
        return np.clip(samples, self.bounds.low, self.bounds.high)

    def _kde_density(self, points: np.ndarray, centres: np.ndarray, bandwidth: float) -> np.ndarray:
        """Gaussian KDE density of ``points`` given mixture ``centres`` (plus uniform floor)."""
        if centres.size == 0:
            return np.full(points.shape, 1.0 / self.bounds.span)
        diffs = (points[:, None] - centres[None, :]) / bandwidth
        kernel = np.exp(-0.5 * diffs**2) / (np.sqrt(2.0 * np.pi) * bandwidth)
        density = kernel.mean(axis=1)
        # Mix in a uniform component so unexplored regions keep non-zero density.
        return 0.95 * density + 0.05 / self.bounds.span
