"""Gaussian-process regression with an RBF kernel, implemented from scratch.

This is the model behind the Bayesian-Optimisation baseline.  Only the pieces
needed for one-dimensional hyper-parameter tuning are implemented: an RBF
(squared-exponential) kernel with output-scale and noise hyper-parameters,
exact posterior inference via a Cholesky factorisation, and a light maximum-
likelihood grid search over the length scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import cho_factor, cho_solve


@dataclass(frozen=True)
class RBFKernel:
    """Squared-exponential kernel ``variance * exp(-0.5 * (d / length_scale)^2)``."""

    length_scale: float = 1.0
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.length_scale <= 0 or self.variance <= 0:
            raise ValueError("kernel hyper-parameters must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_1d(np.asarray(a, dtype=np.float64))
        b = np.atleast_1d(np.asarray(b, dtype=np.float64))
        distances = (a[:, None] - b[None, :]) / self.length_scale
        return self.variance * np.exp(-0.5 * distances**2)


class GaussianProcessRegressor:
    """Exact GP regression on scalar inputs.

    Parameters
    ----------
    kernel:
        Prior covariance function.
    noise:
        Observation noise variance added to the kernel diagonal.
    normalize_targets:
        Standardise targets before fitting (recommended: QUBO fitness values
        have arbitrary scale).
    """

    def __init__(
        self,
        kernel: RBFKernel | None = None,
        noise: float = 1e-4,
        normalize_targets: bool = True,
    ) -> None:
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.kernel = kernel or RBFKernel()
        self.noise = noise
        self.normalize_targets = normalize_targets
        self._train_inputs: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._cho: tuple | None = None
        self._target_mean = 0.0
        self._target_std = 1.0

    # -------------------------------------------------------------------- fit
    def fit(self, inputs: np.ndarray, targets: np.ndarray) -> "GaussianProcessRegressor":
        inputs = np.atleast_1d(np.asarray(inputs, dtype=np.float64))
        targets = np.atleast_1d(np.asarray(targets, dtype=np.float64))
        if inputs.shape != targets.shape:
            raise ValueError("inputs and targets must have the same shape")
        if inputs.size == 0:
            raise ValueError("cannot fit a GP on an empty dataset")
        if self.normalize_targets:
            self._target_mean = float(targets.mean())
            self._target_std = float(targets.std()) or 1.0
        else:
            self._target_mean, self._target_std = 0.0, 1.0
        scaled = (targets - self._target_mean) / self._target_std

        K = self.kernel(inputs, inputs) + self.noise * np.eye(inputs.size)
        self._cho = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._cho, scaled)
        self._train_inputs = inputs
        return self

    @property
    def is_fitted(self) -> bool:
        return self._train_inputs is not None

    # ---------------------------------------------------------------- predict
    def predict(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``inputs``."""
        if not self.is_fitted:
            raise RuntimeError("predict called before fit")
        inputs = np.atleast_1d(np.asarray(inputs, dtype=np.float64))
        cross = self.kernel(inputs, self._train_inputs)
        mean = cross @ self._alpha
        solved = cho_solve(self._cho, cross.T)
        prior_var = np.diag(self.kernel(inputs, inputs))
        var = np.maximum(prior_var - np.einsum("ij,ji->i", cross, solved), 1e-12)
        std = np.sqrt(var)
        return mean * self._target_std + self._target_mean, std * self._target_std

    # --------------------------------------------------------- model selection
    def log_marginal_likelihood(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Log marginal likelihood of the data under the current kernel."""
        inputs = np.atleast_1d(np.asarray(inputs, dtype=np.float64))
        targets = np.atleast_1d(np.asarray(targets, dtype=np.float64))
        mean = targets.mean() if self.normalize_targets else 0.0
        std = (targets.std() or 1.0) if self.normalize_targets else 1.0
        scaled = (targets - mean) / std
        K = self.kernel(inputs, inputs) + self.noise * np.eye(inputs.size)
        cho = cho_factor(K, lower=True)
        alpha = cho_solve(cho, scaled)
        log_det = 2.0 * np.log(np.diag(cho[0])).sum()
        return float(-0.5 * scaled @ alpha - 0.5 * log_det - 0.5 * inputs.size * np.log(2 * np.pi))

    def optimise_length_scale(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        candidates: np.ndarray,
    ) -> "GaussianProcessRegressor":
        """Pick the candidate length scale with the best marginal likelihood and refit."""
        best_score = -np.inf
        best_scale = self.kernel.length_scale
        for scale in np.atleast_1d(candidates):
            trial = GaussianProcessRegressor(
                kernel=RBFKernel(length_scale=float(scale), variance=self.kernel.variance),
                noise=self.noise,
                normalize_targets=self.normalize_targets,
            )
            score = trial.log_marginal_likelihood(inputs, targets)
            if score > best_score:
                best_score = score
                best_scale = float(scale)
        self.kernel = RBFKernel(length_scale=best_scale, variance=self.kernel.variance)
        return self.fit(inputs, targets)
