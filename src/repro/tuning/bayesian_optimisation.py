"""Bayesian-Optimisation baseline: GP surrogate + Expected Improvement.

This mirrors the paper's "BO" baseline (GPyOpt / Spearmint style): a handful of
uniform random startup samples followed by Expected-Improvement maximisation
over a Gaussian-process model of the (penalised) objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.tuning.base import ParameterBounds, ParameterTuner, TrialHistory
from repro.tuning.gaussian_process import GaussianProcessRegressor, RBFKernel
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class BayesianOptimisationConfig:
    """Configuration of :class:`BayesianOptimisationTuner`.

    Parameters
    ----------
    num_startup_trials:
        Uniform random trials before the GP model is used (the paper draws 5).
    num_candidates:
        Size of the candidate grid on which Expected Improvement is evaluated.
    exploration:
        EI "xi" exploration bonus.
    noise:
        GP observation-noise variance (solver outcomes are stochastic).
    """

    num_startup_trials: int = 5
    num_candidates: int = 256
    exploration: float = 0.01
    noise: float = 1e-3

    def __post_init__(self) -> None:
        if self.num_startup_trials < 1:
            raise ValueError("num_startup_trials must be at least 1")
        if self.num_candidates < 8:
            raise ValueError("num_candidates must be at least 8")
        if self.exploration < 0:
            raise ValueError("exploration must be non-negative")
        if self.noise <= 0:
            raise ValueError("noise must be positive")


class BayesianOptimisationTuner(ParameterTuner):
    """GP + Expected Improvement over the relaxation parameter."""

    name = "BO"

    def __init__(
        self,
        bounds: ParameterBounds,
        config: BayesianOptimisationConfig | None = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(bounds, rng)
        self.config = config or BayesianOptimisationConfig()

    def suggest(self, history: TrialHistory) -> float:
        if len(history) < self.config.num_startup_trials:
            return float(self.bounds.uniform(self.rng))

        parameters = history.parameters
        scores = history.scores()
        # Normalise inputs to [0, 1] so one length-scale grid fits every instance.
        normalised = (parameters - self.bounds.low) / self.bounds.span
        gp = GaussianProcessRegressor(
            kernel=RBFKernel(length_scale=0.2, variance=1.0),
            noise=self.config.noise,
        )
        gp.optimise_length_scale(normalised, scores, candidates=np.array([0.05, 0.1, 0.2, 0.4]))

        candidates = np.linspace(0.0, 1.0, self.config.num_candidates)
        # A pinch of jitter avoids proposing exactly the same grid point repeatedly.
        candidates = np.clip(candidates + self.rng.normal(0.0, 1e-3, candidates.size), 0.0, 1.0)
        ei = self._expected_improvement(gp, candidates, float(scores.min()))
        best = candidates[int(np.argmax(ei))]
        return self.bounds.clip(self.bounds.low + best * self.bounds.span)

    def _expected_improvement(
        self,
        gp: GaussianProcessRegressor,
        candidates: np.ndarray,
        best_score: float,
    ) -> np.ndarray:
        """EI for minimisation: improvement is ``best_score - mean``."""
        mean, std = gp.predict(candidates)
        improvement = best_score - mean - self.config.exploration
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)
