"""Relaxation-parameter tuners: the shared trial framework and the generic baselines."""

from repro.tuning.base import (
    ParameterBounds,
    ParameterTuner,
    TrialHistory,
    TrialResult,
)
from repro.tuning.bayesian_optimisation import BayesianOptimisationConfig, BayesianOptimisationTuner
from repro.tuning.gaussian_process import GaussianProcessRegressor, RBFKernel
from repro.tuning.grid_search import GridSearchTuner
from repro.tuning.random_search import RandomSearchTuner
from repro.tuning.tpe import TPEConfig, TPETuner

__all__ = [
    "ParameterBounds",
    "ParameterTuner",
    "TrialResult",
    "TrialHistory",
    "RandomSearchTuner",
    "GridSearchTuner",
    "TPETuner",
    "TPEConfig",
    "BayesianOptimisationTuner",
    "BayesianOptimisationConfig",
    "GaussianProcessRegressor",
    "RBFKernel",
]
