"""Common framework for relaxation-parameter tuners.

A *tuner* proposes relaxation-parameter values one trial at a time.  After each
proposal the caller evaluates the parameter on a QUBO solver (one "call to the
QUBO solver" in the paper's terminology) and reports the outcome back as a
:class:`TrialResult`.  Both the QROSS strategies and the generic baselines
(Random Search, TPE, Bayesian Optimisation) implement this interface, which is
what the experiment harness uses to produce the gap-vs-trials curves of
Figs. 3-5.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ParameterBounds:
    """Inclusive search range for the relaxation parameter."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (self.low > 0 and self.high > self.low):
            raise ValueError(f"bounds must satisfy 0 < low < high, got [{self.low}, {self.high}]")

    def clip(self, value: float) -> float:
        """Clamp ``value`` into the bounds."""
        return float(min(max(value, self.low), self.high))

    def uniform(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        """Sample uniformly from the bounds."""
        sample = rng.uniform(self.low, self.high, size=size)
        return sample if size is not None else float(sample)

    @property
    def span(self) -> float:
        return self.high - self.low


@dataclass(frozen=True)
class TrialResult:
    """Outcome of evaluating one relaxation parameter on the QUBO solver.

    Attributes
    ----------
    parameter:
        The relaxation parameter value that was evaluated.
    probability_of_feasibility:
        Fraction of solver reads that were feasible (paper Eq. 1).
    best_fitness:
        Best original-objective value among the feasible reads, or ``None``
        when no read was feasible.
    energy_mean, energy_std:
        Mean / standard deviation of the QUBO energies of the read batch.
    """

    parameter: float
    probability_of_feasibility: float
    best_fitness: Optional[float]
    energy_mean: float = 0.0
    energy_std: float = 0.0

    @property
    def is_feasible(self) -> bool:
        return self.best_fitness is not None


@dataclass
class TrialHistory:
    """Ordered record of the trials spent on one instance."""

    trials: List[TrialResult] = field(default_factory=list)

    def append(self, trial: TrialResult) -> None:
        self.trials.append(trial)

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self):
        return iter(self.trials)

    @property
    def parameters(self) -> np.ndarray:
        return np.array([t.parameter for t in self.trials])

    @property
    def feasible_trials(self) -> List[TrialResult]:
        return [t for t in self.trials if t.is_feasible]

    def best_fitness(self) -> Optional[float]:
        """Best (lowest) feasible fitness observed so far, if any."""
        feasible = [t.best_fitness for t in self.trials if t.best_fitness is not None]
        return min(feasible) if feasible else None

    def best_fitness_curve(self) -> List[Optional[float]]:
        """Running best feasible fitness after each trial (``None`` until feasible)."""
        curve: List[Optional[float]] = []
        best: Optional[float] = None
        for trial in self.trials:
            if trial.best_fitness is not None and (best is None or trial.best_fitness < best):
                best = trial.best_fitness
            curve.append(best)
        return curve

    def scores(self, infeasible_penalty_factor: float = 1.5) -> np.ndarray:
        """Scalar minimisation scores per trial, penalising infeasible ones.

        Feasible trials score their best fitness.  Infeasible trials score
        worse than every feasible trial: the worst feasible fitness (or the
        mean batch energy when nothing is feasible yet) inflated by
        ``infeasible_penalty_factor`` plus their feasibility deficit, so that
        "almost feasible" trials still rank better than hopeless ones.
        """
        feasible_values = [t.best_fitness for t in self.trials if t.best_fitness is not None]
        if feasible_values:
            baseline = max(feasible_values)
        else:
            baseline = max((abs(t.energy_mean) for t in self.trials), default=1.0)
        baseline = max(baseline, 1e-9)
        scores = []
        for trial in self.trials:
            if trial.best_fitness is not None:
                scores.append(trial.best_fitness)
            else:
                deficit = 1.0 - trial.probability_of_feasibility
                scores.append(baseline * (infeasible_penalty_factor + deficit))
        return np.array(scores)


class ParameterTuner(abc.ABC):
    """Sequential proposer of relaxation-parameter values."""

    #: Name used in experiment reports ("QROSS", "TPE", "BO", "Random").
    name: str = "tuner"

    def __init__(self, bounds: ParameterBounds, rng: RngLike = None) -> None:
        self.bounds = bounds
        self.rng = ensure_rng(rng)

    @abc.abstractmethod
    def suggest(self, history: TrialHistory) -> float:
        """Propose the next relaxation parameter given the trials so far."""

    def observe(self, trial: TrialResult, history: TrialHistory) -> None:
        """Hook called after a trial is evaluated (default: no internal state)."""

    def reset(self) -> None:
        """Clear per-instance state before tuning a new instance."""
