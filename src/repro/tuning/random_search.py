"""Random-search baseline: uniform samples from the parameter bounds."""

from __future__ import annotations

from repro.tuning.base import ParameterBounds, ParameterTuner, TrialHistory
from repro.utils.rng import RngLike


class RandomSearchTuner(ParameterTuner):
    """Samples every trial uniformly at random (the paper's "Random" baseline)."""

    name = "Random"

    def __init__(self, bounds: ParameterBounds, rng: RngLike = None) -> None:
        super().__init__(bounds, rng)

    def suggest(self, history: TrialHistory) -> float:
        return float(self.bounds.uniform(self.rng))
