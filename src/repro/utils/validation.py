"""Lightweight argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def check_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a probability in ``[0, 1]`` and return it."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str = "value", strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly by default) and return it."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_square_matrix(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a 2-D square array and return it as float64."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square 2-D array, got shape {arr.shape}")
    return arr


def check_symmetric(matrix: np.ndarray, name: str = "matrix", tol: float = 1e-8) -> np.ndarray:
    """Validate that ``matrix`` is square and symmetric within ``tol``."""
    arr = check_square_matrix(matrix, name)
    if not np.allclose(arr, arr.T, atol=tol):
        raise ValueError(f"{name} must be symmetric")
    return arr
