"""Shared utilities: random-number handling, validation helpers and timing."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_probability,
    check_positive,
    check_square_matrix,
    check_symmetric,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "check_probability",
    "check_positive",
    "check_square_matrix",
    "check_symmetric",
]
