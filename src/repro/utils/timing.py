"""Small wall-clock timer used by the experiment harness and examples."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager timer accumulating elapsed wall-clock seconds.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started_at: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed += time.perf_counter() - self._started_at

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
