"""Random-number generator helpers.

Every stochastic component in the library accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Using a
single helper keeps the convention uniform and makes experiments reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators derived from ``seed``.

    Child streams are statistically independent, which lets parallel workloads
    (for example one stream per problem instance) be reproducible regardless of
    evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
