"""Central scipy.sparse import guard.

scipy ships with the toolchain, but the library stays importable without it
(sparse storage is then unavailable and everything falls back to dense).
Every storage-polymorphic module imports the guarded handle from here instead
of repeating the try/except block.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every sparse test
    from scipy import sparse as scipy_sparse
except ImportError:  # pragma: no cover
    scipy_sparse = None


def issparse(matrix) -> bool:
    """Whether ``matrix`` is a scipy sparse container (``False`` without scipy)."""
    return scipy_sparse is not None and scipy_sparse.issparse(matrix)
