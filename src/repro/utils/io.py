"""Filesystem helpers shared by the persistence layers."""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: "str | Path", data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never observe a partial file.

    The bytes land in a temp file in the destination directory and are moved
    into place with ``os.replace`` — atomic on POSIX and Windows for paths on
    the same filesystem (which a sibling temp file guarantees).  A *process*
    crash mid-write leaves at most a stale ``.tmp-*`` file; concurrent
    writers of the same path last-write-win with either side's file complete.
    The temp file is not fsynced before the rename, so this does not defend
    against power loss / kernel crashes — callers whose readers cannot treat
    a corrupt file as a miss need their own durability story.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
