"""Ablation benchmark: which part of the composed QROSS strategy does the work?

This covers the design-choice ablations listed in DESIGN.md: the composed
schedule (MFS + PBS + OFS) is compared against MFS-only and PBS-only variants
on the synthetic test set, using the same trained surrogate and solver.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies.composed import ComposedStrategyConfig
from repro.experiments.datasets import build_problems, make_solver, train_surrogate_for_solver
from repro.experiments.reporting import format_gap_summaries
from repro.experiments.runner import qross_tuner_factory, run_comparison


def _run_ablation(profile):
    datasets = build_problems(profile)
    surrogate, _, _ = train_surrogate_for_solver(profile, "da", datasets.train_problems)
    solver = make_solver(profile, "da")
    factories = {
        "QROSS-composed": qross_tuner_factory(
            surrogate, ComposedStrategyConfig(batch_size=profile.num_reads)
        ),
        "QROSS-MFS-only": qross_tuner_factory(
            surrogate,
            ComposedStrategyConfig(use_minimum_fitness=True, pf_targets=(), batch_size=profile.num_reads),
        ),
        "QROSS-PBS-only": qross_tuner_factory(
            surrogate,
            ComposedStrategyConfig(
                use_minimum_fitness=False, pf_targets=(0.8, 0.5, 0.2), batch_size=profile.num_reads
            ),
        ),
    }
    return run_comparison(
        datasets.test_problems,
        solver,
        factories,
        num_trials=profile.num_trials,
        num_reads=profile.num_reads,
        rng=profile.seed + 7,
    )


def test_strategy_mixture_ablation(benchmark, profile, record_report):
    result = benchmark.pedantic(_run_ablation, args=(profile,), rounds=1, iterations=1)
    summaries = result.summaries()
    checkpoints = (1, 3, profile.num_trials)
    record_report("ablation_strategy_mixture", format_gap_summaries(summaries, checkpoints))

    assert set(summaries) == {"QROSS-composed", "QROSS-MFS-only", "QROSS-PBS-only"}
    for summary in summaries.values():
        assert np.all(np.diff(summary.mean) <= 1e-9)
    # All variants find feasible solutions by the end of the budget; the
    # composed schedule is never worse than the MFS-only variant at the end.
    composed = summaries["QROSS-composed"]
    assert composed.mean[-1] <= summaries["QROSS-MFS-only"].mean[-1] + 0.05
    assert composed.mean[-1] < 1.0
