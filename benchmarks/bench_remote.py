"""Benchmark: the remote TCP solve farm — throughput, latency, load-shed.

Two sections:

* **Fleet scaling** — a fixed stream of concurrent seeded engine calls is
  pushed through :class:`RemoteBackend` against localhost fleets of 1, 2 and
  4 workers, recording requests/s and p50/p99 latency per fleet size.  On a
  multi-core host the Python-level solver loops spread across the fleet; on a
  single-core CI box the numbers instead measure pure transport + dispatch
  overhead (the report records the core count so the two cases read apart).
* **Shed regime** — a deliberately saturated one-worker fleet
  (``max_concurrency=1, max_pending=1``) receives a burst with client
  retries disabled: the bounded admission queue must shed the excess with
  typed :class:`ServiceOverloaded` errors — never hang, never queue
  unboundedly — and a second pass with retries enabled must absorb the sheds
  by backing off until the fleet drains.

Run with ``pytest benchmarks/bench_remote.py``; the rendered report lands in
``benchmarks/results/bench_remote.txt``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.qubo.model import random_qubo
from repro.service import ServiceOverloaded, make_solver
from repro.service.remote import RemoteBackend, WorkerServer

SOLVER_SPEC = "sa?num_sweeps=60"
MODEL_SIZE = 24
NUM_READS = 4
REQUESTS = 32
CONCURRENCY = 8
FLEET_SIZES = (1, 2, 4)


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _drive_fleet(addresses, model, solver):
    """Push REQUESTS seeded calls through CONCURRENCY client threads."""
    backend = RemoteBackend(
        workers=addresses, request_timeout=120.0, retries=6, backoff_base=0.02
    )
    latencies = []
    lock = threading.Lock()

    def one_call(seed: int) -> None:
        started = time.perf_counter()
        backend.run(model, solver, NUM_READS, seed)
        elapsed = time.perf_counter() - started
        with lock:
            latencies.append(elapsed)

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
        list(pool.map(one_call, range(REQUESTS)))
    wall = time.perf_counter() - wall_started
    stats = backend.stats()
    backend.close()
    return wall, sorted(latencies), stats


def test_remote_fleet_throughput(record_report):
    model = random_qubo(MODEL_SIZE, rng=7)
    solver = make_solver(SOLVER_SPEC)
    lines = [
        f"remote fleet throughput — {REQUESTS} seeded calls "
        f"({SOLVER_SPEC}, n={MODEL_SIZE}, num_reads={NUM_READS}), "
        f"{CONCURRENCY} client threads, host cores: {os.cpu_count()}",
        "",
        f"{'workers':>8} {'req/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'dials':>6} {'reships':>8}",
    ]
    for fleet_size in FLEET_SIZES:
        # Queue depth sized for the client burst: this section measures
        # throughput/latency, not shedding (that is the next section's job).
        servers = [
            WorkerServer(max_concurrency=2, max_pending=CONCURRENCY).start()
            for _ in range(fleet_size)
        ]
        try:
            wall, latencies, stats = _drive_fleet(
                [server.address for server in servers], model, solver
            )
            served = sum(server.stats()["served"] for server in servers)
        finally:
            for server in servers:
                server.close()
        assert len(latencies) == REQUESTS, "a request failed or hung"
        assert served == REQUESTS, "fleet served-count does not add up"
        lines.append(
            f"{fleet_size:>8} {REQUESTS / wall:>8.1f} "
            f"{1e3 * _percentile(latencies, 0.50):>8.1f} "
            f"{1e3 * _percentile(latencies, 0.99):>8.1f} "
            f"{stats['dials']:>6} {stats['model_reships']:>8}"
        )
    record_report("bench_remote", "\n".join(lines))


def test_remote_shed_regime(record_report):
    model = random_qubo(MODEL_SIZE, rng=7)
    solver = make_solver(SOLVER_SPEC)
    burst = 16

    with WorkerServer(max_concurrency=1, max_pending=1) as server:
        # Pass 1: retries disabled — the bounded queue sheds, visibly.
        backend = RemoteBackend(
            workers=[server.address], retries=0, request_timeout=120.0
        )
        outcomes = {"served": 0, "shed": 0}
        lock = threading.Lock()

        def one_call(seed: int) -> None:
            try:
                backend.run(model, solver, NUM_READS, seed)
            except ServiceOverloaded:
                with lock:
                    outcomes["shed"] += 1
            else:
                with lock:
                    outcomes["served"] += 1

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=burst) as pool:
            list(pool.map(one_call, range(burst)))
        no_retry_wall = time.perf_counter() - started
        backend.close()
        no_retry = dict(outcomes)
        worker_sheds = server.stats()["shed"]

        # Every call resolved to a typed outcome, and the bound actually bit.
        assert no_retry["served"] + no_retry["shed"] == burst
        assert no_retry["shed"] > 0, "the shed regime never shed"
        assert no_retry["served"] >= 1, "admission starved every single call"
        assert worker_sheds >= no_retry["shed"]

        # Pass 2: the same burst with retries + backoff absorbs the sheds.
        backend = RemoteBackend(
            workers=[server.address],
            retries=8,
            backoff_base=0.05,
            backoff_max=0.5,
            request_timeout=240.0,
        )
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=burst) as pool:
            list(pool.map(lambda seed: backend.run(model, solver, NUM_READS, seed), range(burst)))
        retry_wall = time.perf_counter() - started
        retry_stats = backend.stats()
        backend.close()
        assert retry_stats["served"] == burst

    record_report(
        "bench_remote_shed",
        "\n".join(
            [
                f"shed regime — burst of {burst} calls at a 1-worker fleet "
                f"(max_concurrency=1, max_pending=1)",
                "",
                f"retries=0: served {no_retry['served']}, shed "
                f"{no_retry['shed']} (typed ServiceOverloaded), "
                f"worker shed counter {worker_sheds}, wall {no_retry_wall:.2f}s",
                f"retries=8: served {retry_stats['served']}/{burst} after "
                f"{retry_stats['overload_retries']} overload retries, "
                f"wall {retry_wall:.2f}s",
            ]
        ),
    )
