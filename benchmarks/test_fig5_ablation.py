"""Benchmark reproducing Fig. 5 (ablation): DA-trained QROSS evaluated with Qbsolv.

Paper shape: when the surrogate trained on Digital-Annealer data proposes
parameters that are then evaluated by the Qbsolv-style solver, QROSS loses
(part of) its early advantage — the knowledge in the dataset is solver-specific.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure5_cross_solver
from repro.experiments.reporting import format_comparison_figure


def test_figure5_cross_solver_ablation(benchmark, profile, record_report):
    result = benchmark.pedantic(
        figure5_cross_solver, kwargs={"profile": profile}, rounds=1, iterations=1
    )
    checkpoints = (1, 3, profile.num_trials)
    text = "\n\n".join(
        [
            format_comparison_figure(result.same_solver, checkpoints),
            format_comparison_figure(result.cross_solver, checkpoints),
        ]
    )
    record_report("figure5_cross_solver", text)

    same = result.same_solver.result.summaries()
    cross = result.cross_solver.result.summaries()

    # Both runs include QROSS and the TPE reference the paper plots.
    assert "QROSS" in same and "TPE" in same
    assert "QROSS" in cross and "TPE" in cross

    # Gap curves remain valid on both solvers.
    for summaries in (same, cross):
        for summary in summaries.values():
            assert np.all(np.diff(summary.mean) <= 1e-9)

    # Ablation signal (averaged over the early trials to dampen noise): the
    # advantage of QROSS over TPE on its own solver is at least as large as on
    # the foreign solver.
    early = range(1, min(4, profile.num_trials) + 1)
    same_advantage = np.mean([same["TPE"].at_trial(t) - same["QROSS"].at_trial(t) for t in early])
    cross_advantage = np.mean([cross["TPE"].at_trial(t) - cross["QROSS"].at_trial(t) for t in early])
    assert same_advantage >= cross_advantage - 0.05
