"""Encoding-path benchmark: sparse-first COO accumulation vs dense construction.

Records construction wall time and peak RSS for MVC instances at
``n in {1000, 5000}``, sparse storage vs dense, and pins the headline speedup
of the accumulator rewrite: encoding the ``n = 1000`` benchmark instance must
be at least 10x faster than the seed's Python-loop-over-edges encoder (which
is reimplemented below as the reference).

Collected by the benchmark harness (auto-marked ``slow`` by
``benchmarks/conftest.py``); run with ``pytest benchmarks/bench_encoding.py``.
"""

from __future__ import annotations

import resource
import time

import numpy as np
import pytest

from repro.problems.mvc.generator import generate_sparse_mvc_instance
from repro.problems.mvc.qubo import MVCProblem
from repro.qubo.model import QUBOModel

#: (num_vertices, graph edge density) per benchmark case.
CASES = [(1000, 0.01), (5000, 0.004)]


def _peak_rss_mb() -> float:
    """Current peak RSS of the process in MiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def seed_loop_penalty_encoder(instance) -> QUBOModel:
    """The seed's Python-loop MVC penalty encoder, kept as the speed reference."""
    n = instance.num_vertices
    Q = np.zeros((n, n))
    edges = instance.edges()
    offset = float(edges.shape[0])
    for i, j in edges:
        Q[i, i] -= 1.0
        Q[j, j] -= 1.0
        Q[i, j] += 0.5
        Q[j, i] += 0.5
    return QUBOModel(Q, offset=offset, name="seed-penalty")


def _encode_once(instance, storage: str):
    problem = MVCProblem(instance, storage=storage)
    started = time.perf_counter()
    encoding = problem.encode()
    relaxed = encoding.relax(1.5 * problem.relaxation_scale())
    elapsed = time.perf_counter() - started
    return relaxed, elapsed


@pytest.fixture(scope="module")
def instances():
    return {
        (n, density): generate_sparse_mvc_instance(n, edge_density=density, rng=2021)
        for n, density in CASES
    }


class TestEncodingConstruction:
    @pytest.mark.parametrize("case", CASES, ids=lambda c: f"n{c[0]}")
    def test_sparse_vs_dense_construction(self, case, instances, record_report):
        instance = instances[case]
        # Warm the edge cache so both storages encode from identical inputs.
        instance.edges()
        report_lines = [f"MVC n={case[0]} density={case[1]} ({instance.num_edges} edges)"]
        results = {}
        for storage in ("sparse", "dense"):
            rss_before = _peak_rss_mb()
            relaxed, elapsed = _encode_once(instance, storage)
            rss_after = _peak_rss_mb()
            results[storage] = relaxed
            report_lines.append(
                f"  {storage:>6}: construction {elapsed * 1e3:8.2f} ms, "
                f"peak RSS {rss_after:8.1f} MiB (delta {rss_after - rss_before:+7.1f})"
            )
        record_report(f"bench_encoding_n{case[0]}", "\n".join(report_lines))
        assert results["sparse"].storage == "sparse"
        assert results["dense"].storage == "dense"
        assert results["sparse"].fingerprint() == results["dense"].fingerprint()

    def test_accumulator_encoder_at_least_10x_faster_than_seed_loop(self, instances):
        instance = instances[CASES[0]]  # n = 1000
        instance.edges()

        started = time.perf_counter()
        reference = seed_loop_penalty_encoder(instance)
        seed_elapsed = time.perf_counter() - started

        best_new = np.inf
        for _ in range(3):
            problem = MVCProblem(instance, storage="sparse")
            started = time.perf_counter()
            encoding = problem.encode()
            best_new = min(best_new, time.perf_counter() - started)
            assert encoding.penalty.fingerprint() == reference.fingerprint()

        speedup = seed_elapsed / best_new
        assert speedup >= 10.0, (
            f"accumulator encoding must be >= 10x faster than the seed loop "
            f"encoder (got {speedup:.1f}x: seed {seed_elapsed * 1e3:.1f} ms, "
            f"accumulator {best_new * 1e3:.1f} ms)"
        )
