"""Benchmark: thread vs process execution backend on a tuning comparison.

``run_comparison`` with a Python-loop-heavy solver (tabu search) is the
workload the process backend exists for: the per-step bookkeeping holds the
GIL, so fanning (instance, method) pairs across service *threads* cannot use
more than one core, while the process backend runs the same engine calls on
worker processes.  The benchmark runs the identical seeded comparison on both
backends at >= 4 workers and reports the wall-clock ratio.

A second section measures the cross-run :class:`ShardedResultCache`: a seeded
request sweep is run twice against one on-disk store — the re-run performs
zero solver calls and its wall time is pure cache-read cost.

The >= 2x speedup assertion is gated on ``os.cpu_count() >= 4``: with fewer
cores there is nothing for the worker processes to run on and the process
backend can only add dispatch overhead (the report records that too).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.experiments.runner import baseline_tuner_factories, run_comparison
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.model import random_qubo
from repro.service import (
    ProcessPoolBackend,
    ShardedResultCache,
    SolveRequest,
    SolverCallCache,
    SolveService,
    make_solver,
)

WORKERS = 4
#: Python-loop-heavy solver: tabu steps are tiny numpy ops under the GIL.
SOLVER_SPEC = "tabu?num_steps=500"


def _problems(count: int = 4):
    return [
        TSPProblem(generate_instance(7, rng=seed, name=f"dist-tsp{seed}"))
        for seed in range(count)
    ]


def _warm_worker(_: int) -> int:
    """Run a small engine call inside a pool worker (first-call warm-up)."""
    from repro.qubo.model import random_qubo
    from repro.service.registry import make_solver

    solver = make_solver("tabu?num_steps=20")
    solver.sample(random_qubo(16, rng=0), num_reads=2, rng=np.random.default_rng(0))
    return os.getpid()


def _comparison_wall_time(backend) -> float:
    factories = {"Random": baseline_tuner_factories()["Random"]}
    started = time.perf_counter()
    run_comparison(
        _problems(),
        make_solver(SOLVER_SPEC),
        factories,
        num_trials=5,
        num_reads=8,
        rng=11,
        backend=backend,
        max_parallel=WORKERS,
    )
    return time.perf_counter() - started


def test_process_backend_speeds_up_comparison(record_report):
    cores = os.cpu_count() or 1
    process_backend = ProcessPoolBackend(max_workers=WORKERS)
    try:
        # Warm every worker outside the timed region with the benchmark's own
        # solver, so the timing compares steady-state execution rather than
        # one-off spawn/import/first-call costs (pools are shared and long-
        # lived in real use).
        pool = process_backend._executor()
        list(pool.map(_warm_worker, range(2 * WORKERS)))
        process_backend.run(random_qubo(16, rng=0), make_solver(SOLVER_SPEC), 1, 0)
        thread_s = _comparison_wall_time("thread")
        process_s = _comparison_wall_time(process_backend)
    finally:
        process_backend.close()
    speedup = thread_s / process_s

    lines = [
        f"run_comparison wall clock, {WORKERS} workers, solver {SOLVER_SPEC!r}",
        f"  cpu cores             : {cores}",
        f"  thread backend        : {thread_s:.2f} s",
        f"  process backend       : {process_s:.2f} s",
        f"  speedup (thread/proc) : {speedup:.2f}x",
    ]
    if cores < 4:
        lines.append(
            f"  note: only {cores} core(s) — speedup not asserted (needs >= 4); "
            f"the process backend can only add dispatch overhead here"
        )
    record_report("bench_distributed", "\n".join(lines))

    if cores >= 4:
        assert speedup >= 2.0, (
            f"process backend speedup {speedup:.2f}x < 2x at {WORKERS} workers "
            f"on {cores} cores"
        )


def test_sharded_cache_rerun_is_free(record_report, tmp_path):
    model = random_qubo(48, rng=3)
    requests = [
        SolveRequest(solver=SOLVER_SPEC, model=model, num_reads=4, seed=seed)
        for seed in range(8)
    ]

    def sweep() -> "tuple[float, list]":
        cache = SolverCallCache(persistent=ShardedResultCache(tmp_path / "store"))
        service = SolveService(max_workers=2, cache=cache, backend="thread")
        try:
            started = time.perf_counter()
            results = service.map_requests(requests)
            elapsed = time.perf_counter() - started
            return elapsed, results
        finally:
            service.close()

    cold_s, cold = sweep()
    warm_s, warm = sweep()  # fresh memory cache, same disk store
    assert all(r.from_cache for r in warm)
    for a, b in zip(cold, warm):
        assert np.array_equal(a.samples.energies, b.samples.energies)

    record_report(
        "bench_distributed_cache",
        "\n".join(
            [
                f"seeded sweep of {len(requests)} requests, solver {SOLVER_SPEC!r}",
                f"  cold run (engine)     : {cold_s * 1e3:.1f} ms",
                f"  re-run (disk cache)   : {warm_s * 1e3:.1f} ms",
                f"  engine calls on re-run: 0 (all served from ShardedResultCache)",
            ]
        ),
    )
    assert warm_s < cold_s
