"""Benchmark reproducing Table 1: optimality gap at trials 3 and 20.

Paper shape: for both solvers (the DA-style annealer and the qbsolv-style
hybrid) and both datasets, QROSS's gap at the early checkpoint is competitive
with or better than the baselines, and every method improves by the late
checkpoint.
"""

from __future__ import annotations

from repro.experiments.reporting import format_table1
from repro.experiments.tables import table1_optimality_gap


def test_table1_optimality_gap(benchmark, profile, record_report):
    result = benchmark.pedantic(
        table1_optimality_gap, kwargs={"profile": profile}, rounds=1, iterations=1
    )
    record_report("table1_optimality_gap", format_table1(result))

    methods = {row.method for row in result.rows}
    solvers = {row.solver for row in result.rows}
    assert methods == {"QROSS", "TPE", "BO", "Random"}
    assert solvers == {"da", "qbsolv"}
    assert len(result.rows) == 8  # 2 solvers x 4 methods (datasets are columns)

    for row in result.rows:
        # Later checkpoints never have a worse gap than earlier ones.
        assert row.synthetic_gap_at_20 <= row.synthetic_gap_at_3 + 1e-9
        assert row.tsplib_gap_at_20 <= row.tsplib_gap_at_3 + 1e-9
        # Gaps are proper fractions of the reference tour length.
        assert 0.0 <= row.synthetic_gap_at_20 <= 1.0
        assert 0.0 <= row.tsplib_gap_at_20 <= 1.0

    # QROSS reaches a small gap by the late checkpoint on the synthetic set
    # with the solver it was trained for, as in the paper's Table 1.
    qross_rows = {row.solver: row for row in result.rows if row.method == "QROSS"}
    assert qross_rows["da"].synthetic_gap_at_20 < 0.15
