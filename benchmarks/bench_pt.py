"""Benchmark: parallel tempering vs plain SA (and tabu) on hard sparse MVC.

Time-to-target on unweighted G(n, M) minimum-vertex-cover instances — the
workload replica exchange exists for: SA commits its whole sweep budget to one
cooling pass and routinely stalls a vertex or two above the optimum cover,
while PT's temperature ladder keeps hot chains feeding basin hops to the cold
chains throughout the run.

Protocol, per instance:

* the *best-known* energy is established by a generous tabu run (tabu is the
  strongest solver in this repo on MVC and converges far beyond the annealing
  budgets used here);
* PT (one read, ``NUM_CHAINS``-rung ladder) and SA (``NUM_CHAINS`` independent
  reads — the identical number of propagated chains, identical sweep budget)
  both record per-sweep best-energy trajectories, and *sweeps to target* is
  the first sweep whose batch best reaches the best-known energy.

Asserted: PT reaches the best-known energy in fewer sweeps than SA on at
least two of the three instances (seeded, deterministic).  The wall-clock
time-to-target comparison is asserted only on machines with >= 4 cores, per
the repo's 1-CPU container convention — on one core the numbers are recorded
in the report but a box this small is not what the comparison is about.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.problems.mvc.generator import generate_sparse_mvc_instance
from repro.problems.mvc.qubo import MVCProblem
from repro.service.registry import make_solver

NUM_SWEEPS = 200
NUM_CHAINS = 8
SEED = 0

#: (num_vertices, edge_density, instance seed) — sparse graphs big enough
#: that single-pass annealing stalls above the optimum cover.
INSTANCES = [(150, 0.04, 3), (200, 0.03, 7), (250, 0.025, 9)]

PT_SPEC = (
    f"pt?num_sweeps={NUM_SWEEPS}&num_replicas={NUM_CHAINS}"
    f"&swap_interval=1&track_trajectory=true"
)
SA_SPEC = f"sa?num_sweeps={NUM_SWEEPS}&track_trajectory=true"
TABU_SPEC = "tabu?num_steps=4000"


def sweeps_to_target(trajectory, target, tol=1e-9):
    for index, energy in enumerate(trajectory):
        if energy <= target + tol:
            return index + 1
    return None


def test_pt_reaches_target_in_fewer_sweeps_than_sa(record_report):
    cores = os.cpu_count() or 1
    lines = [
        f"time-to-target on unweighted sparse MVC ({NUM_CHAINS} chains, "
        f"{NUM_SWEEPS} sweeps budget)",
        f"  cpu cores : {cores}",
        f"  PT spec   : {PT_SPEC!r} (1 read x {NUM_CHAINS}-rung ladder)",
        f"  SA spec   : {SA_SPEC!r} ({NUM_CHAINS} independent reads)",
        f"  best-known: {TABU_SPEC!r}, 8 reads",
    ]
    pt_wins = 0
    pt_faster_wall = 0
    comparisons = 0
    for num_vertices, density, instance_seed in INSTANCES:
        problem = MVCProblem(
            generate_sparse_mvc_instance(
                num_vertices, edge_density=density, weighted=False, rng=instance_seed
            )
        )
        model = problem.build_qubo(problem.relaxation_scale())

        started = time.perf_counter()
        tabu = make_solver(TABU_SPEC).sample(
            model, num_reads=8, rng=np.random.default_rng(SEED)
        )
        tabu_s = time.perf_counter() - started
        target = tabu.best.energy

        started = time.perf_counter()
        pt = make_solver(PT_SPEC).sample(model, num_reads=1, rng=np.random.default_rng(SEED))
        pt_s = time.perf_counter() - started
        started = time.perf_counter()
        sa = make_solver(SA_SPEC).sample(
            model, num_reads=NUM_CHAINS, rng=np.random.default_rng(SEED)
        )
        sa_s = time.perf_counter() - started

        pt_sweeps = sweeps_to_target(pt.info["best_energy_trajectory"], target)
        sa_sweeps = sweeps_to_target(sa.info["best_energy_trajectory"], target)
        # Wall time to target, prorated over the recorded trajectory.
        pt_wall = None if pt_sweeps is None else pt_s * pt_sweeps / NUM_SWEEPS
        sa_wall = None if sa_sweeps is None else sa_s * sa_sweeps / NUM_SWEEPS

        comparisons += 1
        if pt_sweeps is not None and (sa_sweeps is None or pt_sweeps < sa_sweeps):
            pt_wins += 1
        if pt_wall is not None and (sa_wall is None or pt_wall < sa_wall):
            pt_faster_wall += 1

        def fmt(sweeps, wall):
            if sweeps is None:
                return f"not reached in {NUM_SWEEPS} sweeps"
            return f"{sweeps} sweeps ({wall * 1e3:.0f} ms)"

        lines += [
            f"  n={num_vertices} density={density} seed={instance_seed}: "
            f"best-known {target:.1f} (tabu {tabu_s:.2f} s)",
            f"    PT : best {pt.best.energy:.1f}, target after {fmt(pt_sweeps, pt_wall)}, "
            f"{pt.info['swaps_accepted']}/{pt.info['swaps_proposed']} swaps accepted",
            f"    SA : best {sa.best.energy:.1f}, target after {fmt(sa_sweeps, sa_wall)}",
        ]

    lines.append(
        f"  PT reached best-known first on {pt_wins}/{comparisons} instances "
        f"(wall-clock first on {pt_faster_wall}/{comparisons})"
    )
    if cores < 4:
        lines.append(
            f"  note: only {cores} core(s) — wall-clock comparison recorded, "
            f"not asserted (needs >= 4)"
        )
    record_report("bench_pt", "\n".join(lines))

    assert pt_wins >= 2, (
        f"parallel tempering beat SA to the best-known energy on only "
        f"{pt_wins}/{comparisons} instances (expected >= 2)"
    )
    if cores >= 4:
        assert pt_faster_wall >= 2, (
            f"parallel tempering was wall-clock-faster to target on only "
            f"{pt_faster_wall}/{comparisons} instances (expected >= 2 on "
            f"{cores} cores)"
        )
