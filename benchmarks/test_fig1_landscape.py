"""Benchmark reproducing Fig. 1: the Pf sigmoid and the energy dipper.

Paper shape: as the relaxation parameter grows, the probability of feasibility
rises from 0 to 1 along a sigmoid, and the best objective energy traces a
"dipper" whose bottom (the optimal parameter) sits on the sigmoid slope.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure1_landscape
from repro.experiments.reporting import format_figure1


def test_figure1_landscape(benchmark, profile, record_report):
    result = benchmark.pedantic(
        figure1_landscape, kwargs={"profile": profile, "rng": profile.seed}, rounds=1, iterations=1
    )
    record_report("figure1_landscape", format_figure1(result))

    for label, series in result.series.items():
        pf = series.probability_of_feasibility
        # Sigmoid shape: infeasible at the far left, feasible at the far right.
        assert pf[0] <= 0.5, f"{label}: Pf should start low"
        assert pf[-1] >= 0.5, f"{label}: Pf should end high"
        # Pf is (weakly) increasing overall: compare left-half and right-half means.
        half = pf.size // 2
        assert pf[half:].mean() >= pf[:half].mean()

    # The best feasible fitness exists somewhere on the slope / right plateau.
    da = result.series["Digital Annealer"]
    assert np.any(np.isfinite(da.best_fitness))
