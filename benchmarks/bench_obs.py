"""Benchmark: telemetry overhead — tracing must cost ≤2% of solve throughput.

Two sections:

* **Overhead** — the same stream of seeded solves is pushed through a
  :class:`SolveService` with tracing off and with tracing on (every request
  emitting its full span tree to a JSONL sink).  Each mode runs
  ``TRIALS`` interleaved passes and the best wall time per mode is compared;
  interleaving and best-of de-noise machine jitter so the ratio measures the
  instrumentation itself.  The run *asserts* the ratio stays within the 2%
  budget — a regression that makes tracing expensive fails the benchmark, not
  just a dashboard.
* **Trace shape** — one traced solve through a loopback remote fleet, with
  the resulting stitched tree rendered by ``python -m repro.obs.report``
  embedded in the report, so the committed artefact documents what a trace
  actually looks like.

Run with ``pytest benchmarks/bench_obs.py``; the rendered report lands in
``benchmarks/results/bench_obs.txt``.
"""

from __future__ import annotations

import io
import json
import time

from repro import obs
from repro.obs import report as obs_report
from repro.qubo.model import random_qubo
from repro.service.remote import RemoteBackend, WorkerServer
from repro.service.requests import SolveRequest
from repro.service.service import SolveService

SOLVER_SPEC = "sa?num_sweeps=200"
MODEL_SIZE = 32
NUM_READS = 4
REQUESTS = 24
TRIALS = 3
OVERHEAD_BUDGET = 1.02  # traced wall time may be at most 2% above untraced


def _drive(model, trace_sink) -> float:
    """One pass of REQUESTS distinct seeded solves; returns the wall time."""
    if trace_sink is None:
        obs.reset_tracing()
    else:
        obs.configure_tracing(trace_sink)
    try:
        with SolveService(max_workers=2) as service:
            started = time.perf_counter()
            futures = [
                service.submit(
                    SolveRequest(
                        solver=SOLVER_SPEC, model=model, num_reads=NUM_READS, seed=seed
                    )
                )
                for seed in range(REQUESTS)
            ]
            for future in futures:
                future.result()
            return time.perf_counter() - started
    finally:
        obs.reset_tracing()


def test_tracing_overhead(record_report, tmp_path):
    model = random_qubo(MODEL_SIZE, rng=13)
    off_walls, on_walls = [], []
    # Warm-up pass outside the measurement (imports, pool spin-up, JIT-warm
    # caches); then interleave the modes so drift hits both equally.
    _drive(model, None)
    for trial in range(TRIALS):
        off_walls.append(_drive(model, None))
        on_walls.append(_drive(model, tmp_path / f"trace-{trial}.jsonl"))
    best_off, best_on = min(off_walls), min(on_walls)
    ratio = best_on / best_off

    events = [
        json.loads(line)
        for line in open(tmp_path / f"trace-{TRIALS - 1}.jsonl")
    ]
    spans_per_request = len(events) / REQUESTS

    lines = [
        f"telemetry overhead — {REQUESTS} seeded solves ({SOLVER_SPEC}, "
        f"n={MODEL_SIZE}, num_reads={NUM_READS}), best of {TRIALS} "
        f"interleaved trials per mode",
        "",
        f"{'mode':>12} {'wall s':>8} {'req/s':>8}",
        f"{'tracing off':>12} {best_off:>8.3f} {REQUESTS / best_off:>8.1f}",
        f"{'tracing on':>12} {best_on:>8.3f} {REQUESTS / best_on:>8.1f}",
        "",
        f"overhead ratio: {ratio:.4f} (budget {OVERHEAD_BUDGET:.2f}), "
        f"{spans_per_request:.1f} spans emitted per request",
    ]
    record_report("bench_obs", "\n".join(lines))
    assert ratio <= OVERHEAD_BUDGET, (
        f"tracing overhead {100 * (ratio - 1):.1f}% exceeds the "
        f"{100 * (OVERHEAD_BUDGET - 1):.0f}% budget "
        f"(off {best_off:.3f}s, on {best_on:.3f}s)"
    )


def test_remote_trace_tree_renders(record_report, tmp_path):
    sink = tmp_path / "remote-trace.jsonl"
    model = random_qubo(MODEL_SIZE, rng=13)
    obs.configure_tracing(sink)
    try:
        with WorkerServer() as server:
            backend = RemoteBackend(workers=[server.address])
            with obs.span("client"):
                with SolveService(backend=backend, max_workers=1) as service:
                    service.solve(model, solver=SOLVER_SPEC, num_reads=NUM_READS, seed=3)
            backend.close()
    finally:
        obs.reset_tracing()

    events = [json.loads(line) for line in open(sink)]
    assert len({event["trace_id"] for event in events}) == 1, "tree did not stitch"

    rendered = io.StringIO()
    assert obs_report.render_report(str(sink), rendered) == 0
    record_report(
        "bench_obs_trace",
        "one seeded remote solve, stitched and rendered by "
        "python -m repro.obs.report:\n\n" + rendered.getvalue().rstrip(),
    )
