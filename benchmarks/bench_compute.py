"""Compute-layer benchmark: engine sweep throughput, float64 vs float32.

The ``repro.compute`` refactor promises that routing every engine kernel
through the array-backend handle costs nothing on the numpy/float64
reference, and that the end-to-end float32 path (state, fields, operator
values all single-precision; energies re-scored exact) at minimum holds
throughput parity — float32 halves the kernel memory traffic, so it must
never be a regression.  This benchmark measures SA, DA and PT sweeps/s on an
``n = 1000`` random QUBO for each available backend × dtype combination and
asserts the float32/float64 ratio per solver.

Torch/CuPy enroll automatically when importable (the containerised run is
numpy-only); the report records exactly which combinations ran.

Collected by the benchmark harness (auto-marked ``slow`` by
``benchmarks/conftest.py``); run with ``pytest benchmarks/bench_compute.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compute import available_array_backends
from repro.qubo.model import random_qubo
from repro.service import make_solver

N = 1000
NUM_READS = 8
SEED = 2021
REPEATS = 3
#: float32 must not regress throughput; 0.9 absorbs single-run timer noise.
MIN_FLOAT32_RATIO = 0.9

#: (label, spec template, sweeps performed per read) — one entry per batched
#: annealing solver.  A DA "step" evaluates all n flip deltas, the same
#: kernel shape as one SA sweep; PT runs its sweeps on every ladder rung.
WORKLOADS = [
    ("sa", "sa?num_sweeps={sweeps}", 30, lambda s: s * NUM_READS),
    ("da", "da?num_steps={sweeps}", 30, lambda s: s * NUM_READS),
    (
        "pt",
        "pt?num_sweeps={sweeps}&num_replicas=4&swap_interval=5",
        20,
        lambda s: s * NUM_READS * 4,
    ),
]


def _throughput(spec: str, model, total_sweeps: int) -> float:
    """Best-of-``REPEATS`` sweeps/s for one seeded solver call."""
    solver = make_solver(spec)
    solver.sample(model, num_reads=NUM_READS, rng=np.random.default_rng(SEED))  # warm-up
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        solver.sample(model, num_reads=NUM_READS, rng=np.random.default_rng(SEED))
        best = min(best, time.perf_counter() - started)
    return total_sweeps / best


def test_float32_throughput_holds_parity(record_report):
    model = random_qubo(N, density=0.5, rng=SEED)
    backends = available_array_backends()
    lines = [
        f"engine sweep throughput at n={N}, {NUM_READS} reads "
        f"(best of {REPEATS}, total batched sweeps/s)",
        f"  array backends available: {', '.join(backends)}",
    ]
    ratios = {}
    for label, template, sweeps, total in WORKLOADS:
        base_spec = template.format(sweeps=sweeps)
        total_sweeps = total(sweeps)
        rates = {}
        for kind in backends:
            for dtype in ("float64", "float32"):
                spec = f"{base_spec}&array_backend={kind}&dtype={dtype}"
                rates[(kind, dtype)] = _throughput(spec, model, total_sweeps)
        ratio = rates[("numpy", "float32")] / rates[("numpy", "float64")]
        ratios[label] = ratio
        lines.append(f"  {label:<5} ({base_spec!r})")
        for (kind, dtype), rate in rates.items():
            lines.append(f"    {kind}/{dtype:<8}: {rate:8.1f} sweeps/s")
        lines.append(f"    numpy float32/float64 throughput ratio: {ratio:.2f}x")
    record_report("bench_compute", "\n".join(lines))

    for label, ratio in ratios.items():
        assert ratio >= MIN_FLOAT32_RATIO, (
            f"{label}: float32 throughput is {ratio:.2f}x float64 — the "
            f"single-precision path must hold parity (>= {MIN_FLOAT32_RATIO}x)"
        )
