"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one figure or table from the paper on the
profile selected by the ``QROSS_PROFILE`` environment variable (``smoke`` by
default, ``small`` / ``paper`` for larger runs).  The rendered text report of
every experiment is written to ``benchmarks/results/`` and echoed to stdout so
``pytest benchmarks/ --benchmark-only`` leaves a readable record.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import pytest

from repro.experiments.profiles import ExperimentProfile, resolve_profile

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Every benchmark is a figure/table reproduction or a timing run — all slow.

    Marking them here (instead of per-module) keeps ``-m "not slow"`` as the
    one-flag fast pre-commit invocation documented in ROADMAP.md.  The hook
    receives the whole session's items, so restrict to this directory.
    """
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def profile() -> ExperimentProfile:
    """Experiment profile shared by every benchmark in the session."""
    return resolve_profile()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_report(results_dir: Path) -> Callable[[str, str], None]:
    """Persist a rendered report and echo it for the benchmark log."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _record
