"""Micro-benchmarks of the solver substrates and the surrogate inference path.

These are classic pytest-benchmark timings (multiple rounds) rather than
figure reproductions: they document the cost of one solver call versus one
surrogate evaluation, which is the whole premise of QROSS ("an evaluation on
the solver surrogate is much cheaper/faster than a call to a QUBO solver").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import SamplingPlan, collect_training_data
from repro.core.features import TSPStatisticsExtractor
from repro.core.surrogate import SolverSurrogate, SurrogateConfig
from repro.problems.tsp.generator import generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.qubo.model import random_qubo
from repro.solvers.digital_annealer import DigitalAnnealerConfig, DigitalAnnealerSolver
from repro.solvers.qbsolv import QbsolvConfig, QbsolvSolver
from repro.solvers.simulated_annealing import SimulatedAnnealingConfig, SimulatedAnnealingSolver
from repro.solvers.tabu import TabuSearchConfig, TabuSearchSolver


@pytest.fixture(scope="module")
def benchmark_problem(profile):
    instance = generate_instance(profile.min_cities, rng=profile.seed, name="throughput")
    return TSPProblem(instance)


@pytest.fixture(scope="module")
def benchmark_qubo(benchmark_problem):
    return benchmark_problem.build_qubo(benchmark_problem.relaxation_scale())


@pytest.fixture(scope="module")
def tiny_surrogate(profile):
    problems = [
        TSPProblem(generate_instance(profile.min_cities, rng=seed, name=f"thr-{seed}"))
        for seed in range(4)
    ]
    solver = DigitalAnnealerSolver(DigitalAnnealerConfig(steps_per_variable=8))
    plan = SamplingPlan(coarse_multipliers=(0.3, 0.7, 1.0, 1.5), num_refinement_points=2, num_reads=8)
    dataset = collect_training_data(problems, solver, TSPStatisticsExtractor(), plan=plan, rng=0)
    surrogate = SolverSurrogate(
        TSPStatisticsExtractor(), config=SurrogateConfig(hidden_sizes=(32, 32), num_epochs=60), rng=0
    )
    surrogate.fit(dataset, rng=0)
    return surrogate


class TestSolverCallCost:
    def test_digital_annealer_call(self, benchmark, profile, benchmark_qubo):
        solver = DigitalAnnealerSolver(profile.digital_annealer_config())
        result = benchmark(solver.sample, benchmark_qubo, num_reads=profile.num_reads, rng=0)
        assert result.num_samples == profile.num_reads

    def test_simulated_annealing_call(self, benchmark, profile, benchmark_qubo):
        solver = SimulatedAnnealingSolver(profile.simulated_annealing_config())
        result = benchmark(solver.sample, benchmark_qubo, num_reads=profile.num_reads, rng=0)
        assert result.num_samples == profile.num_reads

    def test_qbsolv_call(self, benchmark, profile, benchmark_qubo):
        solver = QbsolvSolver(QbsolvConfig(subproblem_size=profile.qbsolv_subproblem_size, max_rounds=2))
        result = benchmark(solver.sample, benchmark_qubo, num_reads=2, rng=0)
        assert result.num_samples == 2

    def test_tabu_call(self, benchmark, benchmark_qubo):
        solver = TabuSearchSolver(TabuSearchConfig(num_steps=200))
        result = benchmark(solver.sample, benchmark_qubo, num_reads=2, rng=0)
        assert result.num_samples == 2


class TestBatchedAnnealingThroughput:
    """Engine-scale timings at n ≈ 1000 (ISSUE 1 acceptance numbers).

    The blocked SA sweep kernel and the replica-batched tabu search are the
    two throughput-critical paths introduced with the shared annealing engine;
    these benchmarks keep their cost visible.  Reference points recorded
    against the serial seed implementations (commit 1137920, same machine):
    SA ran ~27 sweeps/s at n=1000 / 8 reads, and tabu wall time grew roughly
    linearly in ``num_reads`` (0.22 s for 32 reads of 100 steps).
    """

    @pytest.fixture(scope="class")
    def dense_model_n1000(self):
        return random_qubo(1000, density=0.5, rng=0)

    @pytest.fixture(scope="class")
    def sparse_model_n1000(self):
        return random_qubo(1000, density=0.05, rng=1)

    def test_sa_blocked_sweeps_n1000(self, benchmark, dense_model_n1000):
        solver = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=10))
        result = benchmark(solver.sample, dense_model_n1000, num_reads=8, rng=0)
        assert result.num_samples == 8

    def test_tabu_batched_reads_n1000(self, benchmark, dense_model_n1000):
        solver = TabuSearchSolver(TabuSearchConfig(num_steps=100))
        result = benchmark(solver.sample, dense_model_n1000, num_reads=32, rng=0)
        assert result.num_samples == 32

    def test_sa_sparse_backend_n1000(self, benchmark, sparse_model_n1000):
        assert sparse_model_n1000.operator().kind == "sparse"
        solver = SimulatedAnnealingSolver(SimulatedAnnealingConfig(num_sweeps=10))
        result = benchmark(solver.sample, sparse_model_n1000, num_reads=8, rng=0)
        assert result.num_samples == 8


class TestSurrogateInferenceCost:
    def test_surrogate_prediction_grid(self, benchmark, tiny_surrogate, benchmark_problem):
        parameters = np.linspace(0.1, 3.0, 64) * benchmark_problem.relaxation_scale()
        prediction = benchmark(tiny_surrogate.predict, benchmark_problem, parameters)
        assert prediction.probability_of_feasibility.shape == (64,)

    def test_feature_extraction(self, benchmark, benchmark_problem):
        extractor = TSPStatisticsExtractor()
        features = benchmark(extractor.extract, benchmark_problem)
        assert features.shape == (extractor.dim,)
