"""Benchmark: trained UCB portfolio vs its members on hard sparse MVC.

Per-instance time-to-best-known, in the members' shared budget unit (sweeps):
an algorithm portfolio is worth running only if, *without knowing which member
wins on a given instance*, it lands near the per-instance oracle (the best
member picked in hindsight) and clearly beats the per-instance worst member.

Protocol:

* a train pool of sparse G(n, M) MVC instances is harvested
  (:func:`~repro.portfolio.outcomes.harvest_outcomes`) against tabu-computed
  best-known targets, producing the JSONL outcome log the portfolio's
  feature-conditioned model is fitted from;
* on a disjoint 8-instance test pool, every member runs solo at the full
  sweep budget with a best-energy trajectory, giving its sweeps-to-target
  (censored at the budget when it never reaches the tabu best-known);
* the trained ``ucb`` portfolio solves the same instances under the same
  total budget, and its sweeps-to-target is read off the recorded
  ``portfolio_trajectory`` (cumulative member sweeps, so probe overhead and
  misallocated slices are charged against it).

Asserted: median(portfolio) <= 1.5 x median(oracle member) and strictly
below median(worst member); plus the registry-wide contract that a seeded
portfolio solve is byte-identical on the thread and process backends.
"""

from __future__ import annotations

import statistics

import numpy as np

from repro.portfolio import (
    OutcomeLog,
    PortfolioConfig,
    PortfolioSolver,
    harvest_outcomes,
    slice_solver,
    split_member_list,
    time_to_target,
)
from repro.problems.mvc.generator import generate_sparse_mvc_instance
from repro.problems.mvc.qubo import MVCProblem
from repro.service import ProcessPoolBackend, ThreadExecutionBackend
from repro.service.registry import make_solver

SEED = 0
BUDGET = 200  # total member sweeps, portfolio and solo runs alike
NUM_READS = 2
MEMBERS = "sa,pt?num_replicas=8&swap_interval=1"
TABU_SPEC = "tabu?num_steps=4000"

#: (num_vertices, edge_density, instance seed).  Sparse enough that a single
#: cooling pass stalls above the optimum cover — the regime where the two
#: members genuinely differ (see bench_pt.py).
TRAIN_INSTANCES = [(120, 0.05, 101), (130, 0.045, 102), (140, 0.04, 103),
                   (150, 0.04, 104), (130, 0.05, 105), (145, 0.045, 106)]
TEST_INSTANCES = [(120, 0.05, 1), (125, 0.05, 2), (130, 0.045, 3),
                  (135, 0.045, 4), (140, 0.04, 5), (145, 0.04, 6),
                  (150, 0.04, 7), (155, 0.035, 8)]


def build_pool(table):
    return [
        MVCProblem(
            generate_sparse_mvc_instance(
                n, edge_density=density, weighted=False, rng=seed,
                name=f"mvc-n{n}-s{seed}",
            )
        )
        for n, density, seed in table
    ]


def best_known(problem):
    model = problem.build_qubo(problem.relaxation_scale())
    samples = make_solver(TABU_SPEC).sample(
        model, num_reads=8, rng=np.random.default_rng(SEED)
    )
    return model, float(samples.best.energy)


def trajectory_time_to_target(trajectory, target, tol=1e-6):
    for cumulative_budget, energy in trajectory:
        if energy <= target + tol:
            return float(cumulative_budget)
    return None


def censor(value):
    return float(BUDGET) if value is None else float(value)


def test_portfolio_tracks_the_oracle_member(record_report, tmp_path):
    specs = split_member_list(MEMBERS)

    # ---- train: harvest member outcomes against tabu best-known targets.
    train_pool = build_pool(TRAIN_INSTANCES)
    train_targets = {}
    for problem in train_pool:
        _, target = best_known(problem)
        train_targets[problem.name] = target
    log_path = tmp_path / "train_outcomes.jsonl"
    harvest_outcomes(
        train_pool, MEMBERS, budget=BUDGET, num_reads=NUM_READS, seed=SEED,
        targets=train_targets, tolerance=1e-6, log=OutcomeLog(log_path),
    )

    portfolio = PortfolioSolver(
        PortfolioConfig(
            members=MEMBERS, strategy="ucb", sweep_budget=BUDGET,
            outcome_log=str(log_path), track_trajectory=True,
        )
    )

    # ---- test: solo members vs the trained portfolio, same total budget.
    lines = [
        f"time-to-best-known on sparse MVC (budget {BUDGET} sweeps, "
        f"{NUM_READS} reads, censored at budget)",
        f"  members   : {MEMBERS!r}",
        f"  portfolio : trained ucb over {len(train_pool)}-instance harvest "
        f"({len(OutcomeLog.load(log_path))} outcome records)",
        f"  best-known: {TABU_SPEC!r}, 8 reads",
    ]
    member_ttb = {spec: [] for spec in specs}
    oracle_ttb, worst_ttb, portfolio_ttb = [], [], []
    for problem in build_pool(TEST_INSTANCES):
        model, target = best_known(problem)

        per_member = {}
        for spec in specs:
            solver = slice_solver(make_solver(spec), BUDGET)
            samples = solver.sample(
                model, NUM_READS, rng=np.random.default_rng(SEED)
            )
            per_member[spec] = time_to_target(samples, target, BUDGET, tolerance=1e-6)
            member_ttb[spec].append(censor(per_member[spec]))

        samples = portfolio.sample(model, NUM_READS, rng=np.random.default_rng(SEED))
        reached = trajectory_time_to_target(
            samples.info["portfolio_trajectory"], target
        )
        portfolio_ttb.append(censor(reached))
        oracle_ttb.append(min(member_ttb[spec][-1] for spec in specs))
        worst_ttb.append(max(member_ttb[spec][-1] for spec in specs))

        def fmt(value):
            return "censored" if value is None or value >= BUDGET else f"{value:.0f}"

        member_text = ", ".join(
            f"{spec.partition('?')[0]} {fmt(per_member[spec])}" for spec in specs
        )
        lines.append(
            f"  {problem.name}: best-known {target:.1f} | {member_text} | "
            f"portfolio {fmt(reached)} "
            f"(spent {samples.info['portfolio_budget_spent']:.0f}, "
            f"{samples.info['portfolio_rounds']} rounds)"
        )

    med = statistics.median
    lines += [
        f"  median sweeps-to-best-known: portfolio {med(portfolio_ttb):.0f}, "
        f"oracle member {med(oracle_ttb):.0f}, worst member {med(worst_ttb):.0f}",
        "  member medians: "
        + ", ".join(
            f"{spec.partition('?')[0]} {med(member_ttb[spec]):.0f}" for spec in specs
        ),
    ]

    # ---- determinism: thread and process backends agree byte-for-byte.
    check_model = build_pool(TEST_INSTANCES[:1])[0]
    check_model = check_model.build_qubo(check_model.relaxation_scale())
    thread = ThreadExecutionBackend().run(check_model, portfolio, NUM_READS, 11)
    pool = ProcessPoolBackend(max_workers=1)
    try:
        process = pool.run(check_model, portfolio, NUM_READS, 11)
    finally:
        pool.close()
    assert np.array_equal(thread.assignments, process.assignments)
    assert np.array_equal(thread.energies, process.energies)
    lines.append("  thread/process byte-parity: OK (seed 11)")

    record_report("bench_portfolio", "\n".join(lines))

    assert med(portfolio_ttb) <= 1.5 * med(oracle_ttb), (
        f"portfolio median {med(portfolio_ttb)} exceeds 1.5x the oracle "
        f"member's {med(oracle_ttb)}"
    )
    assert med(portfolio_ttb) < med(worst_ttb), (
        f"portfolio median {med(portfolio_ttb)} is no better than the worst "
        f"member's {med(worst_ttb)}"
    )
