"""Benchmark reproducing Fig. 4: the same comparison on the TSPLIB-like suite.

Paper shape: the surrogate is trained on the synthetic distribution but still
leads (or matches) the baselines on the out-of-distribution real-world-like
instances — the "knowledge generalises to instances of different size" claim.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure4_tsplib_comparison
from repro.experiments.reporting import format_comparison_figure


def test_figure4_tsplib_comparison(benchmark, profile, record_report):
    figure = benchmark.pedantic(
        figure4_tsplib_comparison, kwargs={"profile": profile}, rounds=1, iterations=1
    )
    checkpoints = (1, 3, profile.num_trials)
    record_report("figure4_tsplib", format_comparison_figure(figure, checkpoints))

    summaries = figure.result.summaries()
    assert set(summaries) == {"QROSS", "TPE", "BO", "Random"}
    for summary in summaries.values():
        assert np.all(np.diff(summary.mean) <= 1e-9)

    # Out-of-distribution generalisation: the offline proposals still produce
    # feasible solutions within the first three trials.
    assert summaries["QROSS"].at_trial(3) < 1.0
