"""Benchmark reproducing Fig. 3: QROSS vs TPE / BO / Random on the synthetic test set.

Paper shape: QROSS starts ahead of every baseline at the first trial (its first
three proposals need no solver feedback) and stays at or below the baselines as
the trial budget grows.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure3_synthetic_comparison
from repro.experiments.reporting import format_comparison_figure


def test_figure3_synthetic_comparison(benchmark, profile, record_report):
    figure = benchmark.pedantic(
        figure3_synthetic_comparison, kwargs={"profile": profile}, rounds=1, iterations=1
    )
    checkpoints = (1, 3, profile.num_trials)
    record_report("figure3_synthetic", format_comparison_figure(figure, checkpoints))

    summaries = figure.result.summaries()
    assert set(summaries) == {"QROSS", "TPE", "BO", "Random"}

    # Every method's mean gap curve is non-increasing (running best fitness).
    for summary in summaries.values():
        assert np.all(np.diff(summary.mean) <= 1e-9)

    # QROSS finds feasible solutions within its offline proposals and ends the
    # budget at least as good as the random baseline.
    qross = summaries["QROSS"]
    assert qross.at_trial(3) < 1.0
    assert qross.at_trial(profile.num_trials) <= summaries["Random"].at_trial(profile.num_trials) + 0.02
