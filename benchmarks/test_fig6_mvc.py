"""Benchmark reproducing Fig. 6 (Appendix B): MVC penalty weight vs normalised energy.

Paper shape: on both the (simulated, noisy) quantum annealer and plain
simulated annealing, pushing the penalty weight orders of magnitude beyond the
feasibility threshold degrades the normalised objective energy — the noisy
device degrades more because the objective drowns in the analog error floor.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure6_mvc_penalty
from repro.experiments.reporting import format_figure6


def test_figure6_mvc_penalty(benchmark, profile, record_report):
    # Keep the MVC graphs a little smaller than the paper's 65 nodes on the
    # smoke profile; the mechanism (penalty >> objective => degradation) is
    # size-independent.
    num_vertices = 65 if profile.name == "paper" else 24
    num_runs = 4 if profile.name == "paper" else 2
    result = benchmark.pedantic(
        figure6_mvc_penalty,
        kwargs={
            "profile": profile,
            "num_vertices": num_vertices,
            "num_runs": num_runs,
            "rng": profile.seed,
        },
        rounds=1,
        iterations=1,
    )
    record_report("figure6_mvc_penalty", format_figure6(result))

    assert set(result.normalized_energy) == {"sa", "qa"}
    for values in result.normalized_energy.values():
        # Energies are normalised to the best discovered state, so >= 1.
        assert np.all(values >= 1.0 - 1e-9)

    qa = result.normalized_energy["qa"]
    sa = result.normalized_energy["sa"]
    # Degradation at the largest penalty weight relative to the best operating
    # point, and the noisy QA degrades at least as much as SA.
    assert qa[-1] >= qa.min() - 1e-9
    assert qa[-1] >= sa[-1] - 0.05
