"""Solver generalisation study (paper Section 5.3 and Fig. 5).

Trains one surrogate per solver backend (DA-style and Qbsolv-style), then
evaluates each surrogate with each solver on the synthetic test set.  The
diagonal entries ("trained on X, evaluated on X") should beat the off-diagonal
ones — the paper's ablation showing that the learned knowledge is
solver-specific.

Run with:  python examples/solver_comparison.py
"""

from __future__ import annotations

from repro.core.strategies.composed import ComposedStrategyConfig
from repro.experiments.datasets import build_problems, make_solver, train_surrogate_for_solver
from repro.experiments.profiles import resolve_profile
from repro.experiments.reporting import format_table
from repro.experiments.runner import qross_tuner_factory, run_comparison
from repro.service import SolveService


def main() -> None:
    profile = resolve_profile()
    datasets = build_problems(profile)
    backends = ("da", "qbsolv")

    print("training one surrogate per solver backend...")
    surrogates = {}
    for backend in backends:
        surrogates[backend], _, _ = train_surrogate_for_solver(
            profile, backend, datasets.train_problems
        )

    checkpoint = min(3, profile.num_trials)
    rows = []
    # One solve service executes every (surrogate, solver) cell; the solver
    # backends are constructed through the registry-backed make_solver shim.
    with SolveService() as service:
        for trained_on in backends:
            for evaluated_on in backends:
                factories = {
                    "QROSS": qross_tuner_factory(
                        surrogates[trained_on], ComposedStrategyConfig(batch_size=profile.num_reads)
                    )
                }
                result = run_comparison(
                    datasets.test_problems,
                    make_solver(profile, evaluated_on),
                    factories,
                    num_trials=checkpoint,
                    num_reads=profile.num_reads,
                    rng=profile.seed,
                    service=service,
                )
                gap = result.summary("QROSS").at_trial(checkpoint)
                rows.append([trained_on, evaluated_on, f"{gap:.1%}"])

    print()
    print(format_table(["surrogate trained on", "evaluated with", f"gap@{checkpoint}"], rows))
    print(
        "\nExpected shape: the diagonal (trained and evaluated on the same solver)"
        "\nshows a gap no worse than the corresponding off-diagonal entry."
    )


if __name__ == "__main__":
    main()
