"""Penalty-weight study on Minimum Vertex Cover (paper Appendix B / Fig. 6).

Shows why tuning the penalty weight matters even when "any sigma > max(w)"
is feasible in exact arithmetic: on a solver with analog control error or
limited coefficient precision, an oversized penalty drowns the objective and
the returned covers get heavier.

Run with:  python examples/mvc_penalty_study.py
"""

from __future__ import annotations

from repro.experiments.figures import figure6_mvc_penalty
from repro.experiments.profiles import resolve_profile
from repro.experiments.reporting import format_figure6, sparkline


def main() -> None:
    profile = resolve_profile()
    num_vertices = 65 if profile.name == "paper" else 24
    result = figure6_mvc_penalty(
        profile,
        num_vertices=num_vertices,
        num_runs=2 if profile.name != "paper" else 4,
        rng=profile.seed,
    )
    print(format_figure6(result))
    print()
    for name, values in result.normalized_energy.items():
        label = "noisy quantum annealer" if name == "qa" else "simulated annealing"
        print(f"{label:>24}: {sparkline(values)}  (left = small penalty, right = large penalty)")
    print(
        "\nExpected shape: both curves are lowest near the feasibility threshold"
        "\nand rise as the penalty weight grows by orders of magnitude; the noisy"
        "\nannealer degrades at least as much as plain simulated annealing."
    )


if __name__ == "__main__":
    main()
