"""Penalty-weight study on Minimum Vertex Cover (paper Appendix B / Fig. 6).

Shows why tuning the penalty weight matters even when "any sigma > max(w)"
is feasible in exact arithmetic: on a solver with analog control error or
limited coefficient precision, an oversized penalty drowns the objective and
the returned covers get heavier.

Run with:  python examples/mvc_penalty_study.py
"""

from __future__ import annotations

import repro
from repro.experiments.figures import figure6_mvc_penalty
from repro.experiments.profiles import resolve_profile
from repro.experiments.reporting import format_figure6, sparkline
from repro.problems.mvc.generator import (
    RandomMVCConfig,
    generate_mvc_instance,
    generate_sparse_mvc_instance,
)
from repro.problems.mvc.qubo import MVCProblem


def main() -> None:
    profile = resolve_profile()
    num_vertices = 65 if profile.name == "paper" else 24
    result = figure6_mvc_penalty(
        profile,
        num_vertices=num_vertices,
        num_runs=2 if profile.name != "paper" else 4,
        rng=profile.seed,
    )
    print(format_figure6(result))
    print()
    for name, values in result.normalized_energy.items():
        label = "noisy quantum annealer" if name == "qa" else "simulated annealing"
        print(f"{label:>24}: {sparkline(values)}  (left = small penalty, right = large penalty)")
    print(
        "\nExpected shape: both curves are lowest near the feasibility threshold"
        "\nand rise as the penalty weight grows by orders of magnitude; the noisy"
        "\nannealer degrades at least as much as plain simulated annealing."
    )

    # One concrete cover through the service API, penalty set just above the
    # feasibility threshold (the sweet spot the study above identifies).
    instance = generate_mvc_instance(
        RandomMVCConfig(num_vertices=num_vertices, edge_probability=0.5), rng=profile.seed
    )
    problem = MVCProblem(instance)
    solved = repro.solve(
        problem=problem,
        solver="sa",
        num_sweeps=profile.sa_num_sweeps,
        relaxation_parameter=1.5 * problem.relaxation_scale(),
        num_reads=profile.num_reads,
        seed=profile.seed,
    )
    cover = solved.best_assignment
    print(
        f"\nrepro.solve cover on a fresh {num_vertices}-vertex graph: "
        f"{int(cover.sum())} vertices, weight {problem.fitness(cover):.1f}, "
        f"feasible={problem.is_feasible(cover)}"
    )

    # The sparse-first encoding path: a graph this size never materialises a
    # dense n x n QUBO — adjacency, objective, penalty and the relaxed model
    # all stay CSR end to end.
    big = generate_sparse_mvc_instance(2000, edge_density=0.005, rng=profile.seed)
    big_problem = MVCProblem(big)
    big_solved = repro.solve(
        problem=big_problem,
        solver="sa",
        num_sweeps=8,
        relaxation_parameter=1.5 * big_problem.relaxation_scale(),
        num_reads=4,
        seed=profile.seed,
    )
    relaxed = big_problem.encode().relax(1.5 * big_problem.relaxation_scale())
    big_cover = big_solved.best_assignment
    print(
        f"sparse path: n={big.num_vertices}, m={big.num_edges} -> "
        f"relaxed storage={relaxed.storage!r} (density {relaxed.density():.4f}); "
        f"best cover {int(big_cover.sum())} vertices, "
        f"feasible={big_problem.is_feasible(big_cover)}"
    )


if __name__ == "__main__":
    main()
