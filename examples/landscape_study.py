"""Landscape study (paper Fig. 1): how the relaxation parameter shapes solver behaviour.

Sweeps the relaxation parameter for one TSP instance on both the
Digital-Annealer-style solver and plain simulated annealing, printing the
probability of feasibility (the sigmoid) and the best energy (the dipper), and
then shows the same landscape as *predicted* by a trained surrogate — the
"predict the landscape without calling the solver" feature from the paper's
introduction.  A final section re-measures the sigmoid by submitting the whole
sweep to the batching :class:`~repro.service.SolveService` in one
``map_requests`` call.

Run with:  python examples/landscape_study.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.datasets import build_problems, train_surrogate_for_solver
from repro.experiments.figures import figure1_landscape
from repro.experiments.profiles import resolve_profile
from repro.experiments.reporting import format_figure1, format_table, sparkline
from repro.service import SolveRequest, SolveService


def main() -> None:
    profile = resolve_profile()
    datasets = build_problems(profile)
    problem = datasets.test_problems[0]

    print("== Measured landscape (solver calls) ==")
    result = figure1_landscape(profile, problem=problem, rng=profile.seed)
    print(format_figure1(result))

    print("\n== The same sweep as one batched service submission ==")
    scale = problem.relaxation_scale()
    sweep = np.linspace(0.2, 2.5, 12) * scale
    requests = [
        SolveRequest(
            problem=problem,
            relaxation_parameter=float(a),
            solver="da",
            num_reads=profile.num_reads,
            seed=profile.seed + i,
            label=f"A={a:.3g}",
        )
        for i, a in enumerate(sweep)
    ]
    with SolveService(max_workers=4) as service:
        results = service.map_requests(requests)
    pf = np.array(
        [r.samples.probability_of_feasibility(problem.is_feasible) for r in results]
    )
    print(f"{len(requests)} seeded requests executed across the pool")
    print("measured Pf sigmoid:  " + sparkline(pf))

    print("\n== Surrogate-predicted landscape (no solver calls) ==")
    surrogate, _, _ = train_surrogate_for_solver(profile, "da", datasets.train_problems)
    scale = problem.relaxation_scale()
    grid = np.linspace(0.1, 3.0, 24) * scale
    prediction = surrogate.predict(problem, grid)
    rows = [
        [f"{a:.3g}", f"{pf:.2f}", f"{mean:.4g}", f"{std:.3g}"]
        for a, pf, mean, std in zip(
            grid,
            prediction.probability_of_feasibility,
            prediction.energy_mean,
            prediction.energy_std,
        )
    ]
    print(format_table(["A", "predicted Pf", "predicted Eavg", "predicted Estd"], rows))
    print("\npredicted Pf sigmoid: " + sparkline(prediction.probability_of_feasibility))
    print("predicted Eavg curve: " + sparkline(prediction.energy_mean))


if __name__ == "__main__":
    main()
