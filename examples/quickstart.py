"""Quickstart: tune the TSP relaxation parameter with QROSS in five steps.

0. solve one QUBO with the one-call ``repro.solve`` service API,
1. generate a collection of "historical" TSP instances,
2. collect solver data on them (the expensive, offline part),
3. train the solver surrogate,
4. let QROSS propose relaxation parameters for a *new* instance, and
5. compare the result with a random-search baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.strategies.composed import ComposedStrategyConfig
from repro.core.tuner import QROSSTuner
from repro.experiments.datasets import (
    build_problems,
    collect_surrogate_dataset,
    make_solver,
    train_surrogate,
)
from repro.experiments.profiles import resolve_profile
from repro.experiments.runner import default_bounds, tune_instance
from repro.service import SolveService
from repro.tuning.random_search import RandomSearchTuner


def main() -> None:
    profile = resolve_profile()  # "smoke" unless QROSS_PROFILE says otherwise
    print(f"profile: {profile.name}")

    # 1. Historical instances (training) and a fresh instance to solve (test).
    datasets = build_problems(profile)
    new_problem = datasets.test_problems[0]
    print(f"training instances: {len(datasets.train_problems)}, new instance: {new_problem.name}")

    # 0. One call through the solve service: solver spec, reads, seed, done.
    # The relaxed QUBO H_B + A*H_A is composed lazily from the problem's
    # cached sparse-first encoding, on a service worker.
    result = repro.solve(
        problem=new_problem,
        solver="sa",
        num_sweeps=profile.sa_num_sweeps,
        relaxation_parameter=new_problem.relaxation_scale(),
        num_reads=profile.num_reads,
        seed=profile.seed,
    )
    feasible = new_problem.is_feasible(result.best_assignment)
    print(
        f"repro.solve at A = relaxation scale: best energy {result.best_energy:.2f} "
        f"({'feasible' if feasible else 'infeasible'} tour)"
    )

    # 2.-3. Collect solver data and train the surrogate for the DA-style solver.
    solver = make_solver(profile, "da")
    dataset = collect_surrogate_dataset(datasets.train_problems, solver, profile)
    print(f"collected {len(dataset)} solver calls for training: {dataset.summary()}")
    surrogate = train_surrogate(dataset, profile)

    # 4. QROSS proposes parameters for the new instance.
    bounds = default_bounds(new_problem)
    qross = QROSSTuner(
        surrogate,
        new_problem,
        bounds,
        config=ComposedStrategyConfig(batch_size=profile.num_reads),
        rng=0,
    )
    print(f"offline proposals (no solver calls needed): "
          f"{[round(a, 2) for a in qross.offline_candidates()]}")
    # Both tuning loops share one solve service; every solver call flows
    # through its thread pool and per-run evaluation cache.
    with SolveService(max_workers=2) as service:
        qross_history = tune_instance(
            new_problem, solver, qross,
            num_trials=profile.num_trials, num_reads=profile.num_reads, rng=0,
            service=service,
        )

        # 5. Baseline for comparison.
        random_history = tune_instance(
            new_problem,
            solver,
            RandomSearchTuner(bounds, rng=0),
            num_trials=profile.num_trials,
            num_reads=profile.num_reads,
            rng=0,
            service=service,
        )

    reference = new_problem.reference_fitness()
    print(f"\nreference (near-optimal) tour length: {reference:.2f}")
    for name, history in (("QROSS", qross_history), ("Random", random_history)):
        best = history.best_fitness()
        first_feasible = next(
            (i + 1 for i, t in enumerate(history) if t.is_feasible), None
        )
        gap = (best - reference) / reference if best is not None else np.nan
        print(
            f"{name:>6}: best tour {best:.2f} (gap {gap:.1%}), "
            f"first feasible solution at trial {first_feasible}"
        )


if __name__ == "__main__":
    main()
