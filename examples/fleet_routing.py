"""Fleet routing scenario: repeated TSP instances from the same depot region.

The paper motivates QROSS with industrial workloads where "instances of the
same problem are solved repeatedly" (vehicle route planning, warehouse
allocation).  This example simulates a delivery fleet: every morning a new set
of drop-off points is drawn around the same depot and clusters of customers,
and a route must be produced with a tight budget of QUBO-solver calls.

The script builds a history of past mornings, trains the surrogate once, and
then shows how many solver calls QROSS needs on new mornings compared with TPE.

Run with:  python examples/fleet_routing.py
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies.composed import ComposedStrategyConfig
from repro.core.tuner import QROSSTuner
from repro.experiments.datasets import collect_surrogate_dataset, make_solver, train_surrogate
from repro.experiments.profiles import resolve_profile
from repro.experiments.runner import default_bounds, tune_instance
from repro.problems.tsp.generator import SyntheticTSPConfig, generate_instance
from repro.problems.tsp.qubo import TSPProblem
from repro.service import SolveService
from repro.tuning.tpe import TPETuner
from repro.utils.rng import ensure_rng


def morning_instance(day: int, num_stops: int, rng) -> TSPProblem:
    """One morning's delivery stops: clustered customers around fixed districts."""
    config = SyntheticTSPConfig(min_cities=num_stops, max_cities=num_stops, domain_size=50.0)
    instance = generate_instance(
        num_stops, distribution="clustered", config=config, rng=rng, name=f"morning-{day:03d}"
    )
    return TSPProblem(instance)


def main() -> None:
    profile = resolve_profile()
    rng = ensure_rng(profile.seed)
    num_stops = profile.min_cities
    solver = make_solver(profile, "da")

    # History: past mornings the fleet has already routed.
    history_problems = [morning_instance(day, num_stops, rng) for day in range(profile.num_train_instances)]
    print(f"training the surrogate on {len(history_problems)} past mornings "
          f"({num_stops} stops each)...")
    dataset = collect_surrogate_dataset(history_problems, solver, profile)
    surrogate = train_surrogate(dataset, profile)

    # New mornings: route with a small budget of solver calls, all executed by
    # one dispatch service (the seam a real fleet backend would scale out).
    budget = min(5, profile.num_trials)
    print(f"\nrouting {3} new mornings with a budget of {budget} solver calls each\n")
    header = f"{'morning':>12} {'method':>7} {'first feasible':>15} {'best tour':>10} {'gap':>7}"
    print(header)
    print("-" * len(header))
    with SolveService(max_workers=2) as service:
        for day in range(100, 103):
            problem = morning_instance(day, num_stops, rng)
            reference = problem.reference_fitness()
            bounds = default_bounds(problem)
            tuners = {
                "QROSS": QROSSTuner(
                    surrogate, problem, bounds,
                    config=ComposedStrategyConfig(batch_size=profile.num_reads), rng=day,
                ),
                "TPE": TPETuner(bounds, rng=day),
            }
            for name, tuner in tuners.items():
                run = tune_instance(
                    problem, solver, tuner, num_trials=budget, num_reads=profile.num_reads,
                    rng=day, service=service,
                )
                best = run.best_fitness()
                first = next((i + 1 for i, t in enumerate(run) if t.is_feasible), None)
                gap = (best - reference) / reference if best is not None else float("nan")
                best_text = f"{best:.1f}" if best is not None else "none"
                print(f"{problem.name:>12} {name:>7} {str(first):>15} {best_text:>10} {gap:>7.1%}")


if __name__ == "__main__":
    main()
